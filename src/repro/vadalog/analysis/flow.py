"""Position-level information-flow graph for confidentiality analysis.

The :class:`FlowGraph` records how values move between
``(predicate, argument-position)`` pairs: a rule whose head reuses a
body variable copies whatever sits at the variable's body positions
into the head position.  Assignments and external predicates extend
the variable chains inside a rule; monotonic aggregates propagate
their *argument* expression but drop their *contributors* (a count or
a sum does not carry the contributing row's identity — the one
aggregate-shaped declassification the paper's risk measures rely on).
EGD equalities link the equated positions, and — because enforcing an
EGD rewrites a labelled null *everywhere it occurs* — taint entering
one side of an equality may surface at any position reachable from the
existential positions that can feed the other side; the graph records
the existential origin groups so the leakage pass can close over that.

The graph is a pure dependency structure shared through the pass
manager's :class:`~.manager.AnalysisContext` (``context.flow``); the
sensitivity lattice, taint fixpoint and diagnostics live in
:mod:`.leakage`.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..atoms import Annotation

#: A node: (predicate name, 0-based argument position) — the same
#: convention the type checker's VDL060 messages use.
Position = Tuple[str, int]

#: The sensitivity lattice: ``public < qi < identifier/sensitive``.
#: ``identifier`` and ``sensitive`` share the top rank but are distinct
#: kinds — direct identifiers enable re-identification, sensitive
#: values are what an attacker wants to learn.
LEVELS: Dict[str, int] = {
    "public": 0,
    "qi": 1,
    "sensitive": 2,
    "identifier": 2,
}

#: Taint kinds propagated by the leakage pass (public is a declaration,
#: not a taint).
TAINT_KINDS = ("identifier", "qi", "sensitive")

#: Accepted spellings in ``@category("Pred", pos, level)`` annotations,
#: including the :class:`~repro.model.schema.AttributeCategory` labels
#: so schema-derived defaults round-trip.
LEVEL_ALIASES: Dict[str, str] = {
    "public": "public",
    "non-identifying": "public",
    "sampling weight": "public",
    "weight": "public",
    "qi": "qi",
    "quasi-identifier": "qi",
    "quasi_identifier": "qi",
    "identifier": "identifier",
    "id": "identifier",
    "sensitive": "sensitive",
}

#: Externals recognized as anonymization points: a variable passed to
#: one of these has been suppressed, recoded or re-keyed, so flows
#: through it are *declassified* in that rule.
DECLASSIFYING_EXTERNALS = frozenset({"#anonymize", "#suppress", "#recode"})

#: Externals whose outputs are risk *scores*, not data values.
RISK_EXTERNALS = frozenset({"#risk"})

#: Predicate conventionally carrying per-row risk scores; its presence
#: (derived or consumed) marks the program as risk-checked.
RISK_PREDICATE = "riskOutput"


class FlowEdge:
    """One directed value flow between two positions inside a rule."""

    __slots__ = ("source", "target", "rule_label", "variable", "via",
                 "declassified_by", "line", "column")

    def __init__(
        self,
        source: Position,
        target: Position,
        rule_label: Optional[str],
        variable: Optional[str] = None,
        via: Optional[str] = None,
        declassified_by: Optional[str] = None,
        line: Optional[int] = None,
        column: Optional[int] = None,
    ):
        self.source = source
        self.target = target
        self.rule_label = rule_label
        self.variable = variable
        #: ``None`` for a plain head/body copy, else the mechanism the
        #: value passed through ("assignment", "aggregate", "#ext").
        self.via = via
        #: Name of the anonymizing external that declassifies this
        #: edge, or ``None`` for an ordinary (taint-carrying) edge.
        self.declassified_by = declassified_by
        self.line = line
        self.column = column

    def __repr__(self):
        tag = f" via {self.via}" if self.via else ""
        dcl = f" declassified by {self.declassified_by}" \
            if self.declassified_by else ""
        return (
            f"FlowEdge({_render_position(self.source)} -> "
            f"{_render_position(self.target)}{tag}{dcl})"
        )


class Declassifier:
    """One occurrence of an anonymizing external in a rule body."""

    __slots__ = ("external", "rule_label", "argument_positions",
                 "line", "column")

    def __init__(self, external, rule_label, argument_positions,
                 line=None, column=None):
        self.external = external
        self.rule_label = rule_label
        #: Body positions feeding the external's arguments.
        self.argument_positions: Set[Position] = set(argument_positions)
        self.line = line
        self.column = column


class EGDLink:
    """One EGD equality: the body positions binding each side.

    Enforcement unifies the two values, so value may cross from either
    side to the other — and, when a side binds a labelled null, to
    every position that null occupies."""

    __slots__ = ("left_positions", "right_positions", "label",
                 "line", "column")

    def __init__(self, left_positions, right_positions, label,
                 line=None, column=None):
        self.left_positions: Set[Position] = set(left_positions)
        self.right_positions: Set[Position] = set(right_positions)
        self.label = label
        self.line = line
        self.column = column


def _render_position(position: Position) -> str:
    predicate, index = position
    return f"{predicate}[{index}]"


def _equality_variable_groups(expression) -> List[List[str]]:
    """Variable-name groups equated by ``==`` sub-expressions.

    An equality filter makes the compared values equal, so a tainted
    value on either side is observable on the other (``p(Y) :- e(X),
    f(Y), X == Y`` publishes ``X``'s values through ``Y``).  Negated
    contexts are treated the same — over-tainting is safe."""
    groups: List[List[str]] = []
    stack = [expression]
    while stack:
        node = stack.pop()
        if getattr(node, "op", None) == "==":
            names = [variable.name for variable in node.variables()]
            if len(names) >= 2:
                groups.append(names)
            continue
        for attribute in ("left", "right", "operand", "expression"):
            child = getattr(node, attribute, None)
            if child is not None:
                stack.append(child)
    return groups


class FlowGraph:
    """The position dependency graph of one program."""

    def __init__(self, rules: Sequence, egds: Sequence = (),
                 facts: Sequence = ()):
        #: Forward adjacency: source position -> outgoing edges.
        self.edges: Dict[Position, List[FlowEdge]] = {}
        #: Every position mentioned by a rule head/body or a fact.
        self.positions: Set[Position] = set()
        #: Head-position groups per (rule, existential variable): the
        #: positions a single labelled null is born into.
        self.existential_groups: List[Set[Position]] = []
        #: Anonymization points (for declassification liveness checks).
        self.declassifiers: List[Declassifier] = []
        #: EGD equalities (null-unification channels).
        self.egd_links: List[EGDLink] = []
        #: Whether the program contains any risk-check machinery
        #: (``#risk`` calls or the ``riskOutput`` convention).
        self.has_risk_check = False
        for fact in facts:
            for index in range(fact.arity):
                self.positions.add((fact.predicate, index))
        for rule in rules:
            self._add_rule(rule)
        for egd in egds:
            self._add_egd(egd)

    # -- construction ------------------------------------------------------

    def _add_edge(self, edge: FlowEdge) -> None:
        self.edges.setdefault(edge.source, []).append(edge)

    def _add_rule(self, rule) -> None:
        label = rule.label
        # 1. Variables bound by stored, positive body atoms.
        var_sources: Dict[str, Set[Position]] = {}
        externals = []
        for literal in rule.body:
            atom = literal.atom
            if atom.is_external:
                if atom.predicate in RISK_EXTERNALS:
                    self.has_risk_check = True
                if not literal.negated:
                    externals.append(atom)
                continue
            if atom.predicate == RISK_PREDICATE:
                self.has_risk_check = True
            for index, term in enumerate(atom.terms):
                position = (atom.predicate, index)
                self.positions.add(position)
                if literal.negated:
                    # Negated atoms filter; they do not bind values
                    # (their variables are positively bound elsewhere).
                    continue
                name = getattr(term, "name", None)
                if name is not None:
                    var_sources.setdefault(name, set()).add(position)

        # 2. Variable chains through externals and assignments.  A
        #    non-declassifying external binds its unbound arguments
        #    from its bound ones; assignments bind their target from
        #    the expression's inputs.  Chains may nest, so iterate to a
        #    (tiny) fixpoint.
        var_via: Dict[str, str] = {}
        declassified_by_var: Dict[str, str] = {}
        for atom in externals:
            if atom.predicate in DECLASSIFYING_EXTERNALS:
                for term in atom.terms:
                    name = getattr(term, "name", None)
                    if name is not None:
                        declassified_by_var[name] = atom.predicate
        changed = True
        while changed:
            changed = False
            for atom in externals:
                score_only = atom.predicate in RISK_EXTERNALS
                inputs: Set[Position] = set()
                unbound: List[str] = []
                for term in atom.terms:
                    name = getattr(term, "name", None)
                    if name is None:
                        continue
                    if name in var_sources:
                        inputs |= var_sources[name]
                    else:
                        unbound.append(name)
                for name in unbound:
                    # A risk external emits a score, not the row's
                    # value — its outputs carry no taint.
                    sources = set() if score_only else inputs
                    if sources != var_sources.get(name, None):
                        var_sources[name] = set(sources)
                        var_via[name] = atom.predicate
                        changed = True
            for assignment in rule.assignments:
                target = assignment.target.name
                sources: Set[Position] = set()
                for variable in assignment.input_variables():
                    sources |= var_sources.get(variable.name, set())
                if sources != var_sources.get(target, None):
                    var_sources[target] = sources
                    var_via[target] = "assignment"
                    changed = True
            for condition in rule.conditions:
                for names in _equality_variable_groups(
                    condition.expression
                ):
                    merged: Set[Position] = set()
                    for name in names:
                        merged |= var_sources.get(name, set())
                    for name in names:
                        if merged != var_sources.get(name, None):
                            var_sources[name] = set(merged)
                            var_via.setdefault(name, "== condition")
                            changed = True

        # 2b. Declassifier records, from the settled variable chains
        #     (so assignment-computed inputs are accounted for).
        for atom in externals:
            if atom.predicate not in DECLASSIFYING_EXTERNALS:
                continue
            argument_positions: Set[Position] = set()
            for term in atom.terms:
                name = getattr(term, "name", None)
                if name is not None:
                    argument_positions |= var_sources.get(name, set())
            self.declassifiers.append(
                Declassifier(
                    atom.predicate, label, argument_positions,
                    line=atom.line, column=atom.column,
                )
            )

        # 3. Aggregates: the target carries the argument expression's
        #    values; contributors only key deduplication and are
        #    dropped — identity-erasing by construction.
        for aggregate in rule.aggregates:
            sources = set()
            if aggregate.argument is not None:
                for variable in aggregate.argument.variables():
                    sources |= var_sources.get(variable.name, set())
            var_sources[aggregate.target.name] = sources
            var_via[aggregate.target.name] = (
                f"aggregate {aggregate.function}"
            )

        # 4. Head projection: edges from each variable's sources into
        #    the head positions it fills; existential variables become
        #    origin groups instead.
        existential = {v.name for v in rule.existential_variables()}
        groups: Dict[str, Set[Position]] = {}
        for atom in rule.head:
            if atom.predicate == RISK_PREDICATE:
                self.has_risk_check = True
            for index, term in enumerate(atom.terms):
                position = (atom.predicate, index)
                self.positions.add(position)
                name = getattr(term, "name", None)
                if name is None:
                    continue
                if name in existential:
                    groups.setdefault(name, set()).add(position)
                    continue
                declassifier = declassified_by_var.get(name)
                for source in var_sources.get(name, ()):
                    self._add_edge(
                        FlowEdge(
                            source,
                            position,
                            label,
                            variable=name,
                            via=var_via.get(name),
                            declassified_by=declassifier,
                            line=atom.line,
                            column=atom.column,
                        )
                    )
        self.existential_groups.extend(groups.values())

    def _add_egd(self, egd) -> None:
        var_sources: Dict[str, Set[Position]] = {}
        for literal in egd.body:
            if literal.negated:
                continue
            atom = literal.atom
            for index, term in enumerate(atom.terms):
                position = (atom.predicate, index)
                self.positions.add(position)
                name = getattr(term, "name", None)
                if name is not None:
                    var_sources.setdefault(name, set()).add(position)
        for left, right in egd.equalities:
            self.egd_links.append(
                EGDLink(
                    var_sources.get(left.name, set()),
                    var_sources.get(right.name, set()),
                    egd.label,
                    line=egd.line,
                    column=egd.column,
                )
            )

    # -- queries -----------------------------------------------------------

    def outgoing(self, position: Position) -> List[FlowEdge]:
        return self.edges.get(position, [])

    def reachable_from(
        self, origins: Iterable[Position], include_declassified: bool = False
    ) -> Set[Position]:
        """Forward closure over (by default) non-declassified edges."""
        seen: Set[Position] = set(origins)
        stack = list(seen)
        while stack:
            position = stack.pop()
            for edge in self.outgoing(position):
                if edge.declassified_by and not include_declassified:
                    continue
                if edge.target not in seen:
                    seen.add(edge.target)
                    stack.append(edge.target)
        return seen

    def predicates(self) -> Set[str]:
        return {predicate for predicate, _ in self.positions}

    def __repr__(self):
        n_edges = sum(len(edges) for edges in self.edges.values())
        return (
            f"FlowGraph({len(self.positions)} positions, {n_edges} edges, "
            f"{len(self.egd_links)} EGD links)"
        )


# ---------------------------------------------------------------------------
# @category seeds.


class CategorySeed:
    """One parsed ``@category("Pred", pos, level)`` declaration."""

    __slots__ = ("predicate", "position", "level", "line", "column")

    def __init__(self, predicate, position, level, line=None, column=None):
        self.predicate = predicate
        self.position = position
        self.level = level
        self.line = line
        self.column = column

    @property
    def key(self) -> Position:
        return (self.predicate, self.position)

    def __repr__(self):
        return (
            f"CategorySeed({self.predicate}[{self.position}] = "
            f"{self.level})"
        )


def parse_category_annotations(
    annotations: Sequence,
) -> Tuple[List[CategorySeed], List[Tuple[Annotation, str]]]:
    """Split ``@category`` annotations into seeds and malformed ones.

    Returns ``(seeds, malformed)`` where ``malformed`` pairs each bad
    annotation with a reason.  The first seed for a position wins, so
    explicit source annotations shadow appended schema defaults.
    """
    seeds: List[CategorySeed] = []
    seen: Set[Position] = set()
    malformed: List[Tuple[Annotation, str]] = []
    for annotation in annotations:
        name, args = annotation
        if name != "category":
            continue
        if len(args) != 3:
            malformed.append((
                annotation,
                f"expected 3 arguments (predicate, position, level), "
                f"got {len(args)}",
            ))
            continue
        predicate, position, level = args
        if not isinstance(position, int) or isinstance(position, bool):
            malformed.append((
                annotation,
                f"position must be a 0-based integer, got {position!r}",
            ))
            continue
        canonical = LEVEL_ALIASES.get(str(level).lower())
        if canonical is None:
            malformed.append((
                annotation,
                f"unknown sensitivity level {level!r}; use one of "
                "public, qi, identifier, sensitive",
            ))
            continue
        key = (str(predicate), position)
        if key in seen:
            continue
        seen.add(key)
        seeds.append(
            CategorySeed(
                str(predicate), position, canonical,
                line=getattr(annotation, "line", None),
                column=getattr(annotation, "column", None),
            )
        )
    return seeds, malformed


def annotations_from_schema(schema, program) -> List[Annotation]:
    """Default ``@category`` annotations for the paper's microdata
    encoding, derived from a
    :class:`~repro.model.schema.MicrodataSchema`.

    ``val(M, I, A, V)`` carries the row handle at position 1 and the
    attribute value at position 3; ``tuple(M, I, VSet)`` carries the
    row handle at position 1 and the packed value set at position 2.
    The row handle is a linkage quasi-identifier; the value positions
    inherit the *highest* category the schema contains (the static
    analysis cannot see which attribute a row binds).  Only predicates
    the program actually uses are annotated, and explicit ``@category``
    annotations in the source take precedence (first-seed-wins in
    :func:`parse_category_annotations` — callers must append these
    defaults *after* the program's own annotations).
    """
    if schema.identifiers:
        value_level = "identifier"
    elif schema.quasi_identifiers:
        value_level = "qi"
    else:
        value_level = "public"
    defaults = [
        ("val", 1, "qi"),
        ("val", 3, value_level),
        ("tuple", 1, "qi"),
        # tuple-build packs only quasi-identifier/weight values.
        ("tuple", 2, "qi" if schema.quasi_identifiers else "public"),
    ]
    used = set(program.predicates())
    return [
        Annotation("category", (predicate, position, level))
        for predicate, position, level in defaults
        if predicate in used
    ]


def build_flow_graph(program) -> FlowGraph:
    """Build the position dependency graph for a program."""
    return FlowGraph(
        program.rules,
        egds=getattr(program, "egds", ()),
        facts=getattr(program, "facts", ()),
    )
