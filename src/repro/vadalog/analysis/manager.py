"""Pass manager: shared analysis context, the pass registry and
:func:`analyze`, the one-call entry point.

A *pass* is a function ``(AnalysisContext) -> Iterable[Diagnostic]``.
Passes share the expensive program-wide artefacts (affected positions,
predicate tables, the dependency graph) through the context, so the
whole pipeline stays a couple of linear scans over the rules — fast
enough to run as a pre-flight before every chase.

Suppression: a program may carry
``@lint_ignore("VDL0xx", "justification").`` annotations; matching
diagnostics move to :attr:`AnalysisReport.suppressed` instead of being
reported.  Error-level diagnostics may be suppressed too — the escape
hatch for programs that are deliberately outside the warded fragment.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from ..wardedness import affected_positions
from .diagnostics import AnalysisReport, Diagnostic

Pass = Callable[["AnalysisContext"], Iterable[Diagnostic]]

#: Registry of (name, pass) in execution order.
PASSES: List[Tuple[str, Pass]] = []


def register_pass(name: str):
    def decorate(function: Pass) -> Pass:
        PASSES.append((name, function))
        return function

    return decorate


class AnalysisContext:
    """Shared, lazily computed program-wide artefacts for passes."""

    def __init__(self, program):
        self.program = program
        self.rules = tuple(program.rules)
        self.egds = tuple(getattr(program, "egds", ()))
        self.facts = tuple(getattr(program, "facts", ()))
        self.annotations = tuple(getattr(program, "annotations", ()))
        self._affected = None
        self._fact_predicates = None
        self._head_predicates = None
        self._body_predicates = None
        self._flow = None
        self._category_seeds = None

    # -- cached artefacts -------------------------------------------------

    @property
    def affected(self):
        if self._affected is None:
            self._affected = affected_positions(self.rules)
        return self._affected

    @property
    def fact_predicates(self) -> Dict[str, int]:
        """Fact predicate -> arity of the first fact seen."""
        if self._fact_predicates is None:
            table: Dict[str, int] = {}
            for fact in self.facts:
                table.setdefault(fact.predicate, fact.arity)
            self._fact_predicates = table
        return self._fact_predicates

    @property
    def head_predicates(self) -> Dict[str, List]:
        """Derived predicate -> rules deriving it."""
        if self._head_predicates is None:
            table: Dict[str, List] = {}
            for rule in self.rules:
                for predicate in rule.head_predicates():
                    table.setdefault(predicate, []).append(rule)
            self._head_predicates = table
        return self._head_predicates

    @property
    def body_predicates(self) -> Dict[str, List]:
        """Used predicate -> rules (or EGDs) using it in a body."""
        if self._body_predicates is None:
            table: Dict[str, List] = {}
            for rule in self.rules:
                for predicate in rule.body_predicates():
                    table.setdefault(predicate, []).append(rule)
            for egd in self.egds:
                for literal in egd.body:
                    table.setdefault(literal.atom.predicate, []).append(egd)
            self._body_predicates = table
        return self._body_predicates

    @property
    def flow(self):
        """The position dependency graph (see :mod:`.flow`)."""
        if self._flow is None:
            from .flow import FlowGraph

            self._flow = FlowGraph(
                self.rules, egds=self.egds, facts=self.facts
            )
        return self._flow

    def category_seeds(self):
        """Parsed ``@category`` sensitivity seeds and the malformed
        annotations, as ``(seeds, malformed)``."""
        if self._category_seeds is None:
            from .flow import parse_category_annotations

            self._category_seeds = parse_category_annotations(
                self.annotations
            )
        return self._category_seeds

    def input_predicates(self) -> List[str]:
        return [
            str(args[0])
            for name, args in self.annotations
            if name == "input" and args
        ]

    def output_predicates(self) -> List[str]:
        return [
            str(args[0])
            for name, args in self.annotations
            if name == "output" and args
        ]

    def lint_ignores(self) -> Dict[str, str]:
        """``@lint_ignore("VDL0xx", "why")`` annotations as code -> why."""
        ignores: Dict[str, str] = {}
        for name, args in self.annotations:
            if name == "lint_ignore" and args:
                code = str(args[0])
                reason = str(args[1]) if len(args) > 1 else ""
                ignores[code] = reason
        return ignores


def analyze(
    program,
    passes: Optional[Sequence[str]] = None,
    source_name: Optional[str] = None,
) -> AnalysisReport:
    """Run the static analyzer over a parsed/constructed program.

    ``passes`` optionally restricts execution to the named passes (see
    :data:`PASSES`); by default every registered pass runs.
    """
    # Import for side effects: pass modules self-register on first use.
    from . import (  # noqa: F401
        deadcode,
        leakage,
        predicates,
        safety,
        stratification,
        style,
        typecheck,
        warding,
    )

    context = AnalysisContext(program)
    wanted = set(passes) if passes is not None else None
    collected: List[Diagnostic] = []
    for name, pass_fn in PASSES:
        if wanted is not None and name not in wanted:
            continue
        for diagnostic in pass_fn(context):
            diagnostic.pass_name = name
            collected.append(diagnostic)

    ignores = context.lint_ignores()
    kept = [d for d in collected if d.code not in ignores]
    suppressed = [d for d in collected if d.code in ignores]
    name = source_name or getattr(program, "name", None) or "<program>"
    return AnalysisReport(
        kept, suppressed=suppressed, ignores=ignores, source_name=name
    )
