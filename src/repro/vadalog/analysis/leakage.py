"""Confidentiality leakage pass: taint propagation over the flow graph.

Sensitivity seeds come from ``@category("Pred", pos, level)``
annotations (positions are 0-based, like VDL060's messages; levels form
the lattice ``public < qi < identifier/sensitive``).  Taint propagates
along the :class:`~.flow.FlowGraph` edges to a fixpoint; edges through
a recognized anonymization point (``#anonymize``/``#suppress``/
``#recode`` arguments) are declassified, and aggregate targets carry
only their argument expression — contributors are dropped, which is
the identity-erasing step the paper's risk measures rely on.  EGD
equalities unify values, so taint crosses them — including into the
labelled nulls they may rewrite, conservatively modelled by tainting
every existential origin group that can feed the equality.

Diagnostics:

* ``VDL070`` (error) — an identifier value can reach an ``@output``
  position without passing a declassification point; the full flow
  path is rendered like the VDL010 cycle printer.
* ``VDL071`` (warning) — a quasi-identifier reaches an ``@output``
  outside any risk-checked cycle (no ``#risk`` call and no
  ``riskOutput`` hand-off anywhere in the program).
* ``VDL072`` (warning) — a sensitive value is used as a join key,
  opening a linkage channel between relations.
* ``VDL073`` (info) — a declared declassification point is dead: no
  tainted value ever reaches its arguments.
* ``VDL074`` (warning) — a malformed or dangling ``@category``
  annotation (it would otherwise silently seed nothing).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from .diagnostics import Diagnostic, ERROR, INFO, Span, WARNING
from .flow import (
    FlowEdge,
    Position,
    TAINT_KINDS,
    _render_position,
)
from .manager import AnalysisContext, register_pass

#: position -> the edge that tainted it (``None`` for seeds).
TaintMap = Dict[Position, Optional[FlowEdge]]


def _propagate(graph, taint: TaintMap, frontier: List[Position]) -> None:
    """BFS one kind's taint forward along non-declassified edges."""
    while frontier:
        position = frontier.pop()
        for edge in graph.outgoing(position):
            if edge.declassified_by:
                continue
            if edge.target not in taint:
                taint[edge.target] = edge
                frontier.append(edge.target)


def compute_taint(
    graph, seeds
) -> Dict[str, TaintMap]:
    """Fixpoint taint per kind, including EGD unification closure."""
    taint: Dict[str, TaintMap] = {kind: {} for kind in TAINT_KINDS}
    for seed in seeds:
        if seed.level in TAINT_KINDS and seed.key in graph.positions:
            taint[seed.level].setdefault(seed.key, None)
    for kind in TAINT_KINDS:
        _propagate(graph, taint[kind], list(taint[kind]))

    if not graph.egd_links:
        return taint

    # Null occurrence closure: where each existential group's nulls can
    # end up (declassified edges still move the null itself).
    group_reach = [
        (group, graph.reachable_from(group, include_declassified=True))
        for group in graph.existential_groups
    ]
    changed = True
    while changed:
        changed = False
        for link in graph.egd_links:
            sides = link.left_positions | link.right_positions
            for kind in TAINT_KINDS:
                tainted_side = next(
                    (p for p in sides if p in taint[kind]), None
                )
                if tainted_side is None:
                    continue
                # Unification may copy the value to the opposite side,
                # and — when a side binds a labelled null — rewrite
                # that null wherever it occurs: taint its origins.
                targets: Set[Position] = set(sides)
                for group, reach in group_reach:
                    if reach & sides:
                        targets |= group
                fresh = [p for p in targets if p not in taint[kind]]
                if not fresh:
                    continue
                changed = True
                for position in fresh:
                    taint[kind][position] = FlowEdge(
                        tainted_side,
                        position,
                        link.label,
                        via="EGD unification",
                        line=link.line,
                        column=link.column,
                    )
                _propagate(graph, taint[kind], list(fresh))
    return taint


def _render_path(taint: TaintMap, position: Position) -> str:
    """Render the flow path back to a seed, VDL010-cycle style."""
    edges: List[FlowEdge] = []
    current = position
    seen: Set[Position] = set()
    while current not in seen:
        seen.add(current)
        edge = taint.get(current)
        if edge is None:
            break
        edges.append(edge)
        current = edge.source
    parts = [_render_position(current)]
    for edge in reversed(edges):
        label = edge.rule_label
        if edge.via == "EGD unification":
            label = f"{label or 'EGD'} (EGD unification)"
        arrow = f"--{label}-->" if label else "->"
        parts.append(f"{arrow} {_render_position(edge.target)}")
    return " ".join(parts)


def _last_edge(taint: TaintMap, position: Position) -> Optional[FlowEdge]:
    return taint.get(position)


@register_pass("leakage")
def check_leakage(context: AnalysisContext) -> Iterable[Diagnostic]:
    seeds, malformed = context.category_seeds()
    for annotation, reason in malformed:
        yield Diagnostic(
            "VDL074",
            WARNING,
            f"malformed @category annotation: {reason}",
            span=Span.of(annotation),
        )

    graph = context.flow
    for seed in seeds:
        if seed.key not in graph.positions:
            yield Diagnostic(
                "VDL074",
                WARNING,
                f"@category annotates unknown position "
                f"{_render_position(seed.key)}: the program never "
                f"mentions it, so the declaration seeds nothing",
                span=Span(seed.line, seed.column),
            )

    if not any(seed.level in TAINT_KINDS for seed in seeds):
        # Nothing tainted: no flows to check, and every declassifier
        # is trivially dead — stay silent rather than spam VDL073.
        return

    taint = compute_taint(graph, seeds)

    # VDL070/VDL071: tainted values surfacing at @output positions.
    outputs = context.output_predicates()
    for predicate in sorted(set(outputs)):
        positions = sorted(
            p for p in graph.positions if p[0] == predicate
        )
        for position in positions:
            if position in taint["identifier"]:
                edge = _last_edge(taint["identifier"], position)
                yield Diagnostic(
                    "VDL070",
                    ERROR,
                    f"identifier flows un-declassified to @output "
                    f"position {_render_position(position)}: "
                    f"{_render_path(taint['identifier'], position)}; "
                    f"route it through #anonymize/#suppress/#recode or "
                    f"drop it from the head",
                    span=Span(
                        getattr(edge, "line", None),
                        getattr(edge, "column", None),
                    ),
                    rule_label=getattr(edge, "rule_label", None),
                )
            elif (
                position in taint["qi"] and not graph.has_risk_check
            ):
                edge = _last_edge(taint["qi"], position)
                yield Diagnostic(
                    "VDL071",
                    WARNING,
                    f"quasi-identifier reaches @output position "
                    f"{_render_position(position)} outside any "
                    f"risk-checked cycle: "
                    f"{_render_path(taint['qi'], position)}; gate the "
                    f"release on a #risk / riskOutput check",
                    span=Span(
                        getattr(edge, "line", None),
                        getattr(edge, "column", None),
                    ),
                    rule_label=getattr(edge, "rule_label", None),
                )

    # VDL072: sensitive values used as join keys.
    sensitive = taint["sensitive"]
    for rule in context.rules:
        occurrences: Dict[str, List] = {}
        for literal in rule.body:
            if literal.negated or literal.atom.is_external:
                continue
            for index, term in enumerate(literal.atom.terms):
                name = getattr(term, "name", None)
                if name is not None:
                    occurrences.setdefault(name, []).append(
                        (literal, (literal.atom.predicate, index))
                    )
        for name in sorted(occurrences):
            entries = occurrences[name]
            literals = {id(lit) for lit, _ in entries}
            if len(literals) < 2:
                continue
            tainted_at = [
                position for _, position in entries
                if position in sensitive
            ]
            if not tainted_at:
                continue
            yield Diagnostic(
                "VDL072",
                WARNING,
                f"sensitive value {name} (from "
                f"{_render_position(tainted_at[0])}) is used as a join "
                f"key across {len(literals)} body atoms — joining on "
                f"sensitive values opens a linkage channel",
                span=Span.of(rule),
                rule_label=rule.label,
            )

    # VDL073: dead declassification points.
    all_tainted: Set[Position] = set()
    for kind in TAINT_KINDS:
        all_tainted |= set(taint[kind])
    for declassifier in graph.declassifiers:
        if declassifier.argument_positions & all_tainted:
            continue
        yield Diagnostic(
            "VDL073",
            INFO,
            f"declassification point {declassifier.external} is dead: "
            f"no tainted value reaches its arguments",
            span=Span(declassifier.line, declassifier.column),
            rule_label=declassifier.rule_label,
        )
