"""Style pass: singleton variables.

Code:

* ``VDL050`` (warning) — a named variable occurs exactly once in the
  rule.  A singleton is either a typo (the second occurrence is spelt
  differently) or a don't-care that should be written ``_``-prefixed to
  say so.  Existential head variables are exempt — occurring once is
  their job — as are ``_``-prefixed (anonymous) names.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, List

from ..terms import Variable
from .diagnostics import Diagnostic, Span, WARNING
from .manager import AnalysisContext, register_pass


def _occurrences(rule) -> Counter:
    counts: Counter = Counter()
    for atom in rule.head:
        counts.update(atom.variables())
    for literal in rule.body:
        counts.update(literal.variables())
    for condition in rule.conditions:
        counts.update(condition.variables())
    for assignment in rule.assignments:
        counts.update(assignment.variables())
    for aggregate in rule.aggregates:
        counts.update(
            v for v in aggregate.variables() if isinstance(v, Variable)
        )
    return counts


@register_pass("style")
def check_style(context: AnalysisContext) -> Iterable[Diagnostic]:
    diagnostics: List[Diagnostic] = []
    for rule in context.rules:
        counts = _occurrences(rule)
        existentials = rule.existential_variables()
        for variable, count in sorted(
            counts.items(), key=lambda item: item[0].name
        ):
            if count != 1 or variable.is_anonymous:
                continue
            if variable in existentials:
                continue
            diagnostics.append(
                Diagnostic(
                    "VDL050",
                    WARNING,
                    f"variable {variable.name} occurs only once; "
                    f"rename to _{variable.name} if it is a don't-care, "
                    "or fix the typo",
                    span=Span.of(rule),
                    rule_label=rule.label,
                )
            )
    return diagnostics
