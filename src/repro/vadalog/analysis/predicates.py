"""Predicate-table pass: arity consistency and defined/used checks.

Codes:

* ``VDL030`` (error) — a predicate is used with inconsistent arities.
  The engine would not crash: the mismatched atoms simply never unify,
  which is the worst kind of bug (silently empty results).
* ``VDL031`` (warning) — a body predicate is never defined: no rule
  derives it, no inline fact provides it, it is not declared ``@input``
  and it is not an external (``#``) predicate.
* ``VDL032`` (warning) — a derived predicate is never read: it appears
  in no body and is not declared ``@output``.

The ``exists`` quantifier marker never reaches the AST (the parser
desugars it), so it cannot trip these checks.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

from .diagnostics import Diagnostic, ERROR, Span, WARNING
from .manager import AnalysisContext, register_pass


@register_pass("predicates")
def check_predicates(context: AnalysisContext) -> Iterable[Diagnostic]:
    diagnostics: List[Diagnostic] = []

    # predicate -> [(arity, span, rule_label)] in source order.
    occurrences: Dict[str, List[Tuple[int, Span, str]]] = {}

    def record(atom, label=None):
        occurrences.setdefault(atom.predicate, []).append(
            (atom.arity, Span.of(atom), label)
        )

    for fact in context.facts:
        record(fact)
    for rule in context.rules:
        for atom in rule.head:
            record(atom, rule.label)
        for literal in rule.body:
            record(literal.atom, rule.label)
    for egd in context.egds:
        for literal in egd.body:
            record(literal.atom, egd.label)

    # VDL030: arity consistency — the first occurrence sets the
    # expectation; later deviations are flagged where they occur.
    for predicate, seen in occurrences.items():
        expected = seen[0][0]
        flagged = set()
        for arity, span, label in seen[1:]:
            if arity != expected and arity not in flagged:
                flagged.add(arity)
                diagnostics.append(
                    Diagnostic(
                        "VDL030",
                        ERROR,
                        f"predicate {predicate} used with arity {arity} "
                        f"but first seen with arity {expected}; "
                        "mismatched atoms never unify",
                        span=span,
                        rule_label=label,
                    )
                )

    derivable = set(context.head_predicates)
    derivable.update(context.fact_predicates)
    derivable.update(context.input_predicates())

    # VDL031: used but never defined.
    seen_undefined = set()
    for rule in context.rules:
        for literal in rule.body:
            predicate = literal.atom.predicate
            if (
                predicate.startswith("#")
                or predicate in derivable
                or predicate in seen_undefined
            ):
                continue
            seen_undefined.add(predicate)
            diagnostics.append(
                Diagnostic(
                    "VDL031",
                    WARNING,
                    f"predicate {predicate} is never defined (no rule, "
                    "fact or @input provides it)",
                    span=Span.of(literal.atom),
                    rule_label=rule.label,
                )
            )

    # VDL032: derived but never read.
    used = set(context.body_predicates)
    used.update(context.output_predicates())
    for predicate, rules in context.head_predicates.items():
        if predicate in used:
            continue
        first = rules[0]
        diagnostics.append(
            Diagnostic(
                "VDL032",
                WARNING,
                f"predicate {predicate} is derived but never read "
                "(not in any body and not @output)",
                span=Span.of(first),
                rule_label=first.label,
            )
        )
    return diagnostics
