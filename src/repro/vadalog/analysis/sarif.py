"""SARIF 2.1.0 output for analyzer findings.

``to_sarif(reports)`` converts a batch of
:class:`~.diagnostics.AnalysisReport` objects (one per linted source)
into a single SARIF log: one run, one result per diagnostic, the full
rule catalogue from :data:`RULES`, and ``@lint_ignore`` suppressions carried
as in-source SARIF suppressions so viewers show them struck-through
rather than hiding the finding.  Results are sorted stably by
(source, line, column, code) across all reports.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from .diagnostics import AnalysisReport, Diagnostic

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

#: The stable diagnostic catalogue: code -> (short description, default
#: severity).  Kept in sync with ``docs/linting.md``.
RULES: Dict[str, tuple] = {
    "VDL000": ("source failed to parse or construct", "error"),
    "VDL001": ("variable bound only by a negated literal", "error"),
    "VDL002": ("implicit existential variable not declared", "warning"),
    "VDL003": ("negated literal shares no variable with the positive "
               "body", "warning"),
    "VDL004": ("condition or assignment reads an unbound variable",
               "error"),
    "VDL010": ("negation cycle: the program is not stratifiable",
               "error"),
    "VDL011": ("negated predicate is never derived", "warning"),
    "VDL020": ("rule is not warded (dangerous variable outside a ward)",
               "error"),
    "VDL021": ("harmful join on an affected position", "error"),
    "VDL030": ("predicate used with inconsistent arities", "error"),
    "VDL031": ("predicate consumed but never derived or asserted",
               "warning"),
    "VDL032": ("predicate derived but never consumed", "warning"),
    "VDL040": ("rule cannot contribute to any @output", "warning"),
    "VDL041": ("duplicate inline fact", "warning"),
    "VDL042": ("inline fact shadowed by an aggregate head", "warning"),
    "VDL050": ("singleton variable (use an anonymous _name)", "info"),
    "VDL060": ("predicate position holds incompatible constant types",
               "warning"),
    "VDL061": ("comparison between incompatible types", "warning"),
    "VDL070": ("identifier flows un-declassified to an @output position",
               "error"),
    "VDL071": ("quasi-identifier reaches an output outside any "
               "risk-checked cycle", "warning"),
    "VDL072": ("sensitive value used as a join key (linkage channel)",
               "warning"),
    "VDL073": ("declared declassification point is dead", "info"),
    "VDL074": ("malformed or dangling @category annotation", "warning"),
}

#: Analyzer severity -> SARIF result level.
_LEVELS = {"error": "error", "warning": "warning", "info": "note"}


def _rule_descriptor(code: str) -> Dict:
    description, default = RULES.get(code, ("unknown diagnostic", "none"))
    return {
        "id": code,
        "name": code,
        "shortDescription": {"text": description},
        "defaultConfiguration": {
            "level": _LEVELS.get(default, "none"),
        },
        "helpUri": f"docs/linting.md#{code.lower()}",
    }


def _location(source_name: str, diagnostic: Diagnostic) -> Dict:
    region: Dict = {}
    if diagnostic.span.line is not None:
        region["startLine"] = diagnostic.span.line
    if diagnostic.span.column is not None:
        region["startColumn"] = diagnostic.span.column
    physical: Dict = {"artifactLocation": {"uri": source_name}}
    if region:
        physical["region"] = region
    return {"physicalLocation": physical}


def _result(
    source_name: str,
    diagnostic: Diagnostic,
    suppression_reason: Optional[str] = None,
) -> Dict:
    result: Dict = {
        "ruleId": diagnostic.code,
        "level": _LEVELS[diagnostic.severity],
        "message": {"text": diagnostic.message},
        "locations": [_location(source_name, diagnostic)],
    }
    properties: Dict = {}
    if diagnostic.rule_label:
        properties["rule"] = diagnostic.rule_label
    if diagnostic.pass_name:
        properties["pass"] = diagnostic.pass_name
    if properties:
        result["properties"] = properties
    if suppression_reason is not None:
        result["suppressions"] = [{
            "kind": "inSource",
            "justification": suppression_reason,
        }]
    return result


def _sort_key(entry) -> tuple:
    source_name, diagnostic, _ = entry
    line, column, code, message = diagnostic.sort_key()
    return (source_name, line, column, code, message)


def to_sarif(
    reports: Iterable[AnalysisReport],
    tool_name: str = "repro-vadalog-lint",
    tool_version: Optional[str] = None,
) -> Dict:
    """Build one SARIF 2.1.0 log covering ``reports``."""
    entries = []  # (source, diagnostic, suppression reason | None)
    used_codes = set()
    for report in reports:
        for diagnostic in report.diagnostics:
            entries.append((report.source_name, diagnostic, None))
            used_codes.add(diagnostic.code)
        for diagnostic in report.suppressed:
            reason = report.ignores.get(diagnostic.code, "")
            entries.append((report.source_name, diagnostic, reason))
            used_codes.add(diagnostic.code)
    entries.sort(key=_sort_key)

    # The full stable catalogue plus any ad-hoc codes that showed up:
    # consumers can rely on every VDL rule being present regardless of
    # which diagnostics this particular batch happened to trigger.
    catalogue = sorted(set(RULES) | used_codes)
    driver: Dict = {
        "name": tool_name,
        "informationUri": "docs/linting.md",
        "rules": [_rule_descriptor(code) for code in catalogue],
    }
    if tool_version:
        driver["version"] = tool_version
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {"driver": driver},
            "results": [
                _result(source, diagnostic, reason)
                for source, diagnostic, reason in entries
            ],
        }],
    }
