"""Wardedness pass — the analyzer face of
:mod:`repro.vadalog.wardedness` (whose API is unchanged).

Codes:

* ``VDL020`` (error) — a rule is not warded: its dangerous variables
  (harmful variables that reach the head) do not share a single ward
  atom.  Outside the warded fragment the paper's decidability and PTIME
  guarantees are void.
* ``VDL021`` (warning) — harmful join: a variable that may carry a
  labelled null is joined across two or more distinct body atoms.
  Legal in warded programs, but these joins are the expensive case the
  Vadalog optimizer isolates; worth knowing about.
"""

from __future__ import annotations

from typing import Iterable, List

from ..wardedness import check_rule, harmful_join_variables
from .diagnostics import Diagnostic, ERROR, Span, WARNING
from .manager import AnalysisContext, register_pass


@register_pass("warding")
def check_warding(context: AnalysisContext) -> Iterable[Diagnostic]:
    diagnostics: List[Diagnostic] = []
    affected = context.affected
    for rule in context.rules:
        verdict = check_rule(rule, affected)
        if not verdict.warded:
            diagnostics.append(
                Diagnostic(
                    "VDL020",
                    ERROR,
                    f"rule is not warded: {verdict.reason}",
                    span=Span.of(rule),
                    rule_label=rule.label,
                )
            )
        joins = harmful_join_variables(rule, affected)
        if joins:
            names = ", ".join(sorted(v.name for v in joins))
            diagnostics.append(
                Diagnostic(
                    "VDL021",
                    WARNING,
                    f"harmful join on variable(s) {names}: positions that "
                    "may hold labelled nulls are joined across body atoms",
                    span=Span.of(rule),
                    rule_label=rule.label,
                )
            )
    return diagnostics
