"""Simple type-inference pass over constants and builtins.

Types are coarse classes — ``number``, ``string``, ``bool``, ``set`` —
inferred from inline facts and constant atom arguments, then propagated
to variables through the body positions they occupy.  No unification,
no polymorphism: the pass only reports clashes it can prove from
constants, which keeps it precise (no false positives) and linear.

Codes:

* ``VDL060`` (warning) — a predicate position holds constants of
  incompatible types (e.g. a string fact where rules match numbers);
  such atoms never unify, silently shrinking results.
* ``VDL061`` (warning) — an expression mixes incompatible types or
  calls an unknown scalar function: arithmetic on strings, ordered
  comparison of a string against a number, or ``f(...)`` where ``f``
  is not a registered builtin.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from ..atoms import Atom
from ..expressions import (
    BinOp,
    Case,
    FuncCall,
    Lit,
    SCALAR_FUNCTIONS,
    TupleExpr,
    UnaryOp,
    VarRef,
)
from ..rules import AGGREGATE_FUNCTIONS
from ..terms import Constant, Variable
from .diagnostics import Diagnostic, Span, WARNING
from .manager import AnalysisContext, register_pass

Position = Tuple[str, int]

_ARITHMETIC = {"-", "*", "/", "%"}
_ORDERED = {"<", "<=", ">", ">="}


def _type_of_value(value) -> Optional[str]:
    if isinstance(value, bool):
        return "bool"
    if isinstance(value, (int, float)):
        return "number"
    if isinstance(value, str):
        return "string"
    if isinstance(value, frozenset):
        return "set"
    return None


class _PositionTypes:
    """Per-position type table; ``None`` means unknown, ``"conflict"``
    means a clash was already recorded there."""

    def __init__(self):
        self.types: Dict[Position, str] = {}
        self.clashes: List[Tuple[Position, str, str, Span]] = []

    def observe(self, position: Position, type_name: str, span: Span):
        current = self.types.get(position)
        if current is None:
            self.types[position] = type_name
        elif current not in (type_name, "conflict"):
            self.clashes.append((position, current, type_name, span))
            self.types[position] = "conflict"

    def lookup(self, position: Position) -> Optional[str]:
        type_name = self.types.get(position)
        return None if type_name == "conflict" else type_name


def _observe_atom(atom: Atom, table: _PositionTypes):
    for index, term in enumerate(atom.terms):
        if isinstance(term, Constant):
            type_name = _type_of_value(term.value)
            if type_name:
                table.observe(
                    (atom.predicate, index), type_name, Span.of(atom)
                )


def _variable_types(rule, table: _PositionTypes) -> Dict[Variable, str]:
    types: Dict[Variable, str] = {}
    for literal in rule.body:
        if literal.negated or literal.atom.is_external:
            continue
        for index, term in enumerate(literal.atom.terms):
            if not isinstance(term, Variable):
                continue
            position_type = table.lookup((literal.atom.predicate, index))
            if position_type is None:
                continue
            if types.setdefault(term, position_type) != position_type:
                types[term] = "conflict"
    return {v: t for v, t in types.items() if t != "conflict"}


class _ExpressionChecker:
    def __init__(self, variable_types, diagnostics, span, label):
        self.variable_types = variable_types
        self.diagnostics = diagnostics
        self.span = span
        self.label = label

    def _warn(self, message: str):
        self.diagnostics.append(
            Diagnostic(
                "VDL061", WARNING, message, span=self.span,
                rule_label=self.label,
            )
        )

    def infer(self, expression) -> Optional[str]:
        if isinstance(expression, Lit):
            return _type_of_value(expression.value)
        if isinstance(expression, VarRef):
            return self.variable_types.get(expression.variable)
        if isinstance(expression, UnaryOp):
            inner = self.infer(expression.operand)
            if expression.op == "-":
                if inner not in (None, "number"):
                    self._warn(f"unary minus applied to {inner} operand")
                return "number"
            return "bool"
        if isinstance(expression, BinOp):
            return self._infer_binop(expression)
        if isinstance(expression, Case):
            self.infer(expression.condition)
            then_type = self.infer(expression.then_value)
            else_type = self.infer(expression.else_value)
            if then_type and else_type and then_type == else_type:
                return then_type
            return None
        if isinstance(expression, TupleExpr):
            for item in expression.items:
                self.infer(item)
            return None
        if isinstance(expression, FuncCall):
            for argument in expression.args:
                self.infer(argument)
            if (
                expression.name not in SCALAR_FUNCTIONS
                and expression.name not in AGGREGATE_FUNCTIONS
                and not expression.name.startswith("#")
            ):
                self._warn(
                    f"call to unknown function {expression.name!r} "
                    "(not a registered scalar builtin)"
                )
            return None
        return None

    def _infer_binop(self, expression: BinOp) -> Optional[str]:
        left = self.infer(expression.left)
        right = self.infer(expression.right)
        op = expression.op
        if op in _ARITHMETIC:
            for side, type_name in (("left", left), ("right", right)):
                if type_name not in (None, "number"):
                    self._warn(
                        f"arithmetic {op!r} with {type_name} "
                        f"{side}-hand operand"
                    )
            return "number"
        if op == "+":
            if left and right and left != right:
                self._warn(f"'+' mixes {left} and {right} operands")
            return left if left == right else None
        if op in _ORDERED:
            if left and right and left != right:
                self._warn(
                    f"ordered comparison {op!r} between {left} and "
                    f"{right}"
                )
            return "bool"
        if op in ("==", "!="):
            if left and right and left != right:
                self._warn(f"equality {op!r} between {left} and {right}")
            return "bool"
        if op == "in":
            if right not in (None, "set", "string"):
                self._warn(f"'in' with non-set right-hand operand ({right})")
            return "bool"
        return "bool"  # && / ||


@register_pass("typecheck")
def check_types(context: AnalysisContext) -> Iterable[Diagnostic]:
    diagnostics: List[Diagnostic] = []
    table = _PositionTypes()
    for fact in context.facts:
        _observe_atom(fact, table)
    for rule in context.rules:
        for atom in rule.head:
            _observe_atom(atom, table)
        for literal in rule.body:
            _observe_atom(literal.atom, table)

    for (predicate, index), previous, conflicting, span in table.clashes:
        diagnostics.append(
            Diagnostic(
                "VDL060",
                WARNING,
                f"position {index} of {predicate} holds both {previous} "
                f"and {conflicting} constants; these atoms never unify",
                span=span,
            )
        )

    for rule in context.rules:
        variable_types = _variable_types(rule, table)
        for condition in rule.conditions:
            checker = _ExpressionChecker(
                variable_types, diagnostics, Span.of(condition), rule.label
            )
            checker.infer(condition.expression)
        for assignment in rule.assignments:
            checker = _ExpressionChecker(
                variable_types, diagnostics, Span.of(assignment), rule.label
            )
            checker.infer(assignment.expression)
        for aggregate in rule.aggregates:
            if aggregate.argument is not None:
                checker = _ExpressionChecker(
                    variable_types, diagnostics, Span.of(rule), rule.label
                )
                checker.infer(aggregate.argument)
    return diagnostics
