"""Term model for the Vadalog engine.

Vadalog (and Datalog± generally) works over three disjoint countably
infinite sets: constants **C**, labelled nulls **N**, and variables **V**
(Section 2.1 of the paper).  This module provides the corresponding Python
types plus a couple of helpers used throughout the engine:

* :class:`Constant` — wraps an arbitrary hashable Python value.
* :class:`Variable` — a named logical variable; names starting with an
  underscore are anonymous ("don't care") variables.
* :class:`LabelledNull` — a fresh symbol invented by the chase when an
  existentially quantified head variable must be satisfied.  Nulls carry a
  monotonically increasing label so ⊥1, ⊥2, ... are distinguishable, which
  the *standard* null semantics relies on (Section 5.1, Fig. 7c).

Terms are immutable and hashable so they can live in fact tuples and in
dict-based indices.
"""

from __future__ import annotations

import itertools
import threading
from typing import Any, Tuple, Union


class Term:
    """Abstract base class for all terms."""

    __slots__ = ()

    @property
    def is_constant(self) -> bool:
        return isinstance(self, Constant)

    @property
    def is_variable(self) -> bool:
        return isinstance(self, Variable)

    @property
    def is_null(self) -> bool:
        return isinstance(self, LabelledNull)

    @property
    def is_ground(self) -> bool:
        """A term is ground when it contains no variables.  Labelled
        nulls *are* ground: they denote (unknown) domain elements."""
        return not isinstance(self, Variable)


class Constant(Term):
    """A constant wrapping an arbitrary hashable Python value."""

    __slots__ = ("value", "_hash")

    def __init__(self, value: Any):
        object.__setattr__(self, "value", value)
        object.__setattr__(self, "_hash", None)

    def __setattr__(self, name, value):  # immutability guard
        raise AttributeError("Constant is immutable")

    def __eq__(self, other):
        return isinstance(other, Constant) and self.value == other.value

    def __hash__(self):
        # Cached lazily: hashing only requires the value to be hashable
        # when the constant actually enters a set/dict.
        cached = self._hash
        if cached is None:
            cached = hash(("const", self.value))
            object.__setattr__(self, "_hash", cached)
        return cached

    def __repr__(self):
        return f"Constant({self.value!r})"

    def __str__(self):
        if isinstance(self.value, str):
            return f'"{self.value}"'
        return str(self.value)


class Variable(Term):
    """A regular (universally quantified, unless head-only) variable."""

    __slots__ = ("name", "_hash")

    def __init__(self, name: str):
        if not name:
            raise ValueError("variable name must be non-empty")
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "_hash", hash(("var", name)))

    def __setattr__(self, name, value):
        raise AttributeError("Variable is immutable")

    @property
    def is_anonymous(self) -> bool:
        return self.name.startswith("_")

    def __eq__(self, other):
        return isinstance(other, Variable) and self.name == other.name

    def __hash__(self):
        return self._hash

    def __repr__(self):
        return f"Variable({self.name!r})"

    def __str__(self):
        return self.name


class LabelledNull(Term):
    """A labelled null ⊥n invented by the chase (or by local suppression,
    Algorithm 7).  Two nulls are equal iff they carry the same label."""

    __slots__ = ("label", "_hash")

    def __init__(self, label: int):
        object.__setattr__(self, "label", int(label))
        object.__setattr__(self, "_hash", hash(("null", self.label)))

    def __setattr__(self, name, value):
        raise AttributeError("LabelledNull is immutable")

    def __eq__(self, other):
        return isinstance(other, LabelledNull) and self.label == other.label

    def __hash__(self):
        return self._hash

    def __repr__(self):
        return f"LabelledNull({self.label})"

    def __str__(self):
        return f"⊥{self.label}"


class NullFactory:
    """Thread-safe generator of fresh labelled nulls.

    The engine holds one factory per evaluation so labels restart at 1
    for every reasoning task — matching how the paper counts "injected
    nulls" per anonymization run.
    """

    def __init__(self, start: int = 1):
        self._counter = itertools.count(start)
        self._lock = threading.Lock()
        self._issued = 0

    def fresh(self) -> LabelledNull:
        with self._lock:
            self._issued += 1
            return LabelledNull(next(self._counter))

    @property
    def issued(self) -> int:
        """Number of nulls handed out so far (the Fig. 7a/7c metric)."""
        return self._issued


#: Python values accepted where a term is expected by the wrapping helpers.
TermLike = Union[Term, str, int, float, bool, tuple, frozenset, None]


def wrap(value: TermLike) -> Term:
    """Coerce a Python value into a :class:`Term`.

    Terms pass through unchanged; everything else becomes a
    :class:`Constant`.  ``None`` is *not* a null — it wraps to
    ``Constant(None)``; labelled nulls must be created explicitly via a
    :class:`NullFactory` so that injections are counted.
    """
    if isinstance(value, Term):
        return value
    return Constant(value)


def unwrap(term: Term) -> Any:
    """Return the Python value under a constant, the null itself for a
    labelled null, and raise for variables (which have no value)."""
    if isinstance(term, Constant):
        return term.value
    if isinstance(term, LabelledNull):
        return term
    raise ValueError(f"cannot unwrap non-ground term {term!r}")


def wrap_tuple(values) -> Tuple[Term, ...]:
    """Wrap every element of an iterable into a term tuple."""
    return tuple(wrap(v) for v in values)


def unwrap_tuple(terms) -> Tuple[Any, ...]:
    """Unwrap every element of a ground term tuple into Python values."""
    return tuple(unwrap(t) for t in terms)
