"""Program container: parsed rules + metadata + evaluation facade.

A :class:`Program` bundles rules, EGDs, extensional facts from the
source text and annotations, supports composition (``+``) so that
pluggable Vadalog *modules* — the paper's off-the-shelf risk measures
and anonymization criteria — can be combined with user-written business
knowledge, and offers one-call evaluation through the chase engine.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

from .atoms import Atom, Fact
from .chase import ChaseEngine, ChaseResult
from .database import FactStore
from .externals import ExternalRegistry
from .negation import stratify
from .parser.parser import parse_program
from .routing import RoutingTable
from .rules import EGD, Rule
from .terms import NullFactory
from .wardedness import WardednessReport, check_wardedness


class Program:
    """A Vadalog program: rules, EGDs, inline facts and annotations."""

    def __init__(
        self,
        rules: Sequence[Rule] = (),
        egds: Sequence[EGD] = (),
        facts: Sequence[Fact] = (),
        annotations: Sequence[Tuple[str, Tuple]] = (),
        name: Optional[str] = None,
    ):
        self.rules = list(rules)
        self.egds = list(egds)
        self.facts = list(facts)
        self.annotations = list(annotations)
        self.name = name

    # -- construction ------------------------------------------------------

    @classmethod
    def parse(cls, source: str, name: Optional[str] = None) -> "Program":
        """Parse Vadalog source text into a program."""
        parsed = parse_program(source)
        return cls(
            rules=parsed.rules,
            egds=parsed.egds,
            facts=parsed.facts,
            annotations=parsed.annotations,
            name=name,
        )

    def outputs(self) -> List[str]:
        """Predicates marked with ``@output("name")`` annotations."""
        return [
            str(args[0])
            for name, args in self.annotations
            if name == "output" and args
        ]

    def inputs(self) -> List[str]:
        """Predicates marked with ``@input("name")`` annotations."""
        return [
            str(args[0])
            for name, args in self.annotations
            if name == "input" and args
        ]

    def __add__(self, other: "Program") -> "Program":
        """Compose two modules into one program."""
        if not isinstance(other, Program):
            return NotImplemented
        name = None
        if self.name and other.name:
            name = f"{self.name}+{other.name}"
        return Program(
            rules=self.rules + other.rules,
            egds=self.egds + other.egds,
            facts=self.facts + other.facts,
            annotations=self.annotations + other.annotations,
            name=name or self.name or other.name,
        )

    # -- static analysis ------------------------------------------------------

    def wardedness(self, strict: bool = False) -> WardednessReport:
        """Run the Warded Datalog± syntactic check (Section 3)."""
        return check_wardedness(self.rules, strict=strict)

    def analyze(self, passes: Optional[Sequence[str]] = None):
        """Run the full static analyzer (see :mod:`.analysis`)."""
        from .analysis import analyze

        return analyze(self, passes=passes)

    def preflight(self) -> None:
        """Reject the program if the analyzer finds error-level
        diagnostics; ``@lint_ignore`` suppressions are honoured.

        Raises :class:`~repro.errors.StaticAnalysisError` carrying the
        full report.  Called by :meth:`run` unless ``preflight=False``.
        """
        from ..errors import StaticAnalysisError

        report = self.analyze()
        if report.has_errors:
            rendered = "; ".join(
                d.render(report.source_name) for d in report.errors
            )
            raise StaticAnalysisError(
                f"program rejected by static analysis: {rendered} "
                "(run with preflight=False to skip the check)",
                report=report,
            )

    def strata(self) -> List[List[Rule]]:
        """The stratification the chase will use (bottom-up)."""
        return stratify(self.rules)

    def predicates(self) -> List[str]:
        names = set()
        for rule in self.rules:
            names.update(rule.head_predicates())
            names.update(rule.body_predicates())
        for fact in self.facts:
            names.add(fact.predicate)
        return sorted(names)

    def rule_by_label(self, label: str) -> Rule:
        for rule in self.rules:
            if rule.label == label:
                return rule
        raise KeyError(f"no rule labelled {label!r}")

    def to_source(self) -> str:
        """Render the program back to parseable Vadalog text."""
        from .render import render_program

        return render_program(self)

    # -- evaluation -------------------------------------------------------------

    def run(
        self,
        facts: Iterable[Fact] = (),
        externals: Optional[ExternalRegistry] = None,
        routing: Optional[RoutingTable] = None,
        provenance: bool = True,
        null_factory: Optional[NullFactory] = None,
        strict_egds: bool = False,
        max_rounds: int = 10_000,
        max_facts: int = 5_000_000,
        termination: str = "restricted",
        listener=None,
        preflight: bool = True,
        use_plans: Optional[bool] = None,
        analyze: bool = False,
        use_columnar: Optional[bool] = None,
        columnar_threshold: Optional[int] = None,
        parallelism: Optional[int] = None,
    ) -> ChaseResult:
        """Evaluate the program over its inline facts plus ``facts``.

        ``termination`` selects the existential blocking strategy:
        ``"restricted"`` (restricted chase; body-bound nulls are rigid)
        or ``"isomorphic"`` (body nulls may map onto other nulls —
        terminates recursive existential chains like employee/manager).

        Unless ``preflight=False``, the static analyzer runs first and
        error-level diagnostics (not-warded rules, unstratifiable
        negation, arity clashes...) abort with a
        :class:`~repro.errors.StaticAnalysisError` instead of a
        chase-time crash or a silently wrong answer.

        ``use_plans`` selects the evaluation path: compiled join plans
        (default) or the legacy recursive enumerator (``False``); the
        ``CHASE_LEGACY_ENUMERATION=1`` environment variable flips the
        default, see ``docs/engine-internals.md``.

        ``analyze=True`` runs EXPLAIN ANALYZE: per-step actuals (rows
        in/out, probe hits, wall time) are collected and surface as
        ``result.explain_report`` / ``result.stats["explain"]`` — see
        ``docs/observability.md``.

        ``use_columnar`` toggles the columnar store backend and the
        batched plan executor (default from ``CHASE_COLUMNAR``, on);
        ``columnar_threshold`` overrides the per-predicate cardinality
        at which relations switch to column storage.

        ``parallelism`` selects the worker count for the parallel
        chase (default from ``CHASE_PARALLELISM``; 0/1 = serial).
        Parallel output is bit-identical to serial — see
        ``docs/parallel-chase.md``.
        """
        if preflight:
            self.preflight()
        from .database import columnar_default_enabled

        if use_columnar is None:
            use_columnar = columnar_default_enabled()
        store = FactStore(
            self.facts,
            columnar=use_columnar,
            columnar_threshold=columnar_threshold,
        )
        store.add_all(facts)
        engine = ChaseEngine(
            self.rules,
            egds=self.egds,
            externals=externals,
            routing=routing,
            provenance=provenance,
            null_factory=null_factory,
            strict_egds=strict_egds,
            max_rounds=max_rounds,
            max_facts=max_facts,
            termination=termination,
            listener=listener,
            use_plans=use_plans,
            analyze=analyze,
            use_columnar=use_columnar,
            columnar_threshold=columnar_threshold,
            parallelism=parallelism,
        )
        return engine.run(store)

    def __len__(self):
        return len(self.rules) + len(self.egds)

    def __repr__(self):
        tag = f" {self.name!r}" if self.name else ""
        return (
            f"Program({tag} {len(self.rules)} rules, {len(self.egds)} "
            f"egds, {len(self.facts)} facts)"
        )
