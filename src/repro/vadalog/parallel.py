"""Parallel sharded chase: a stratum scheduler plus intra-stratum
delta sharding, bit-identical to the serial engine.

Two axes of concurrency (ground: arXiv 2311.12236 on streaming-based
warded architectures and the Vadalog System's pipeline design, arXiv
1807.08709):

1. **Stratum scheduling** — the existing stratification is turned
   into a dependency DAG (stratum *j* → *i* when *i* reads a
   predicate *j* writes) and independent strata run concurrently on a
   worker pool.  Stratification guarantees the DAG is acyclic and
   that every predicate has a single writing stratum.
2. **Delta sharding** — inside a stratum, each round's semi-naive
   frontier is hash-partitioned across workers.  Each worker runs the
   rule's compiled delta plan (:mod:`repro.vadalog.plans`) over its
   shard against a read-only view of the :class:`FactStore`; the
   per-shard match lists are merged back at the round barrier in the
   frontier's original probe order, so the deduped binding list —
   and therefore routing, firing, null labels, and provenance — is
   exactly what the serial engine would have produced.

**Determinism contract.**  ``run(parallelism=k)`` returns bit-identical
results (fact sets including null labels, provenance entries and
order, round counts) for every ``k``, because:

* shard workers only *enumerate*; dedup, routing, external expansion
  and firing stay on the stratum's single coordinator thread, in
  merged serial order;
* strata that issue labelled nulls (existential rules or external
  atoms) are chained in stratum order so they draw from the shared
  :class:`NullFactory` in exactly the serial sequence;
* strata with externals are fully exclusive (externals may inject
  facts into arbitrary predicates), and programs with EGDs or an
  audit listener fall back to a serial *chain* of strata (sharded
  enumeration still applies) so global per-round EGD enforcement and
  listener callback order are preserved byte-for-byte.

The one observable divergence: the ``max_facts`` guard.  A stratum
running concurrently cannot see the global store size
deterministically, so it budgets against the sizes of its *completed
ancestors* only.  Abort/no-abort can differ from serial exactly at the
budget edge — the conformance harness already classifies budget aborts
as skips, never as disagreements.

Escape hatches: ``parallelism<=1`` (or unset ``CHASE_PARALLELISM``)
keeps the serial engine byte-for-byte; ``analyze=True`` always runs
serial.
"""

from __future__ import annotations

import random
import threading
import time
from concurrent.futures import FIRST_COMPLETED, ThreadPoolExecutor, wait
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from .. import telemetry
from ..errors import EvaluationError
from ..telemetry.inspect import ChaseProgress
from ..telemetry.metrics import MetricsRegistry
from .aggregates import AggregateState
from .atoms import Fact
from .database import FactStore
from .egd import enforce_egds
from .explain import ProvenanceLog
from .externals import ExternalContext
from .negation import stratify
from .plans import PlanFallback
from .terms import LabelledNull, NullFactory

__all__ = [
    "StratumNode",
    "build_schedule",
    "ThreadScheduler",
    "FakeScheduler",
    "ParallelStoreView",
    "ShardExecutor",
    "run_parallel",
    "canonical_null_form",
]


# ---------------------------------------------------------------------------
# Stratum dependency schedule


class StratumNode:
    """One stratum in the dependency DAG."""

    __slots__ = (
        "index", "rules", "reads", "writes", "deps", "exclusive",
        "issues_nulls",
    )

    def __init__(self, index: int, rules: Sequence) -> None:
        self.index = index
        self.rules = list(rules)
        self.reads: Set[str] = set()
        self.writes: Set[str] = set()
        self.deps: Set[int] = set()
        #: Exclusive strata run alone: externals can inject facts into
        #: arbitrary predicates, so nothing may overlap them.
        self.exclusive = False
        #: Draws labelled nulls from the shared factory (existential
        #: rules or external atoms) — chained in stratum order.
        self.issues_nulls = False

    def __repr__(self) -> str:
        flags = "".join(
            flag
            for flag, on in (("X", self.exclusive), ("N", self.issues_nulls))
            if on
        )
        return (
            f"StratumNode({self.index}{'/' + flags if flags else ''}, "
            f"deps={sorted(self.deps)}, writes={sorted(self.writes)})"
        )


def build_schedule(
    strata: Sequence[Sequence],
    *,
    has_egds: bool = False,
    has_listener: bool = False,
) -> List[StratumNode]:
    """The stratum dependency DAG.

    Edge *j* → *i* whenever stratum *i* reads (positively or under
    negation) a predicate stratum *j* writes; stratification puts
    writers before readers, so *j* < *i* and the graph is acyclic.
    EGDs (enforced globally at every round barrier) and audit
    listeners (whose callback order is part of the observable ledger)
    degrade the DAG to a serial chain; externals make their stratum
    exclusive.  Null-issuing strata are chained pairwise so the shared
    :class:`NullFactory` hands out labels in serial order.
    """
    nodes: List[StratumNode] = []
    for index, stratum in enumerate(strata):
        node = StratumNode(index, stratum)
        for rule in node.rules:
            for atom in rule.head:
                node.writes.add(atom.predicate)
            for literal in rule.body:
                if literal.atom.is_external:
                    node.exclusive = True
                else:
                    node.reads.add(literal.atom.predicate)
            if rule.existential_variables():
                node.issues_nulls = True
        node.issues_nulls = node.issues_nulls or node.exclusive
        nodes.append(node)
    if has_egds or has_listener:
        for node in nodes:
            node.exclusive = True
    for i, node in enumerate(nodes):
        for j in range(i):
            if node.exclusive or nodes[j].exclusive:
                node.deps.add(j)
            elif node.reads & nodes[j].writes:
                node.deps.add(j)
    last_issuer: Optional[int] = None
    for node in nodes:
        if node.issues_nulls:
            if last_issuer is not None:
                node.deps.add(last_issuer)
            last_issuer = node.index
    return nodes


def _transitive_ancestors(nodes: Sequence[StratumNode]) -> List[Set[int]]:
    """Per-node transitive dependency closure (deps point at lower
    indices, so one in-order pass suffices)."""
    closure: List[Set[int]] = []
    for node in nodes:
        acc: Set[int] = set()
        for dep in node.deps:
            acc.add(dep)
            acc |= closure[dep]
        closure.append(acc)
    return closure


# ---------------------------------------------------------------------------
# Schedulers


class _FakeTask:
    """A lazily-run thunk handle for :class:`FakeScheduler`."""

    __slots__ = ("thunk", "seq", "done", "value", "error")

    def __init__(self, thunk: Callable[[], Any], seq: int = 0) -> None:
        self.thunk = thunk
        self.seq = seq
        self.done = False
        self.value: Any = None
        self.error: Optional[BaseException] = None


class ThreadScheduler:
    """A real worker pool behind the scheduler interface
    (``submit`` / ``wait_any`` / ``result`` / ``map_ordered``)."""

    def __init__(self, workers: int) -> None:
        self.workers = max(1, int(workers))
        self._pool = ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="chase-worker"
        )

    def submit(self, thunk: Callable[[], Any]):
        return self._pool.submit(thunk)

    def wait_any(self, pending):
        done, rest = wait(pending, return_when=FIRST_COMPLETED)
        return done, rest

    def result(self, handle):
        return handle.result()

    def map_ordered(self, thunks: Sequence[Callable[[], Any]]) -> List[Any]:
        """Run all thunks, returning results in submission order."""
        if len(thunks) <= 1:
            return [thunk() for thunk in thunks]
        futures = [self._pool.submit(thunk) for thunk in thunks]
        return [future.result() for future in futures]

    def shutdown(self) -> None:
        self._pool.shutdown(wait=True)


class FakeScheduler:
    """A seedable, single-threaded scheduler that replays adversarial
    worker interleavings deterministically.

    ``map_ordered`` executes shard thunks in a seeded-shuffled order
    (but still returns results in submission order, like the real
    pool's merge barrier), and ``wait_any`` completes a seeded-random
    pending stratum first.  A scheduling bug that depends on execution
    order therefore shrinks to a single integer seed, replayable in a
    test — the same discipline as the conformance harness's seed
    artifacts.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._rng = random.Random(seed)
        self._seq = 0

    def submit(self, thunk: Callable[[], Any]) -> _FakeTask:
        self._seq += 1
        return _FakeTask(thunk, self._seq)

    def wait_any(self, pending):
        # Submission order keys the pick, so a seed replays the same
        # interleaving regardless of set iteration order.
        tasks = sorted(pending, key=lambda task: task.seq)
        pick = tasks[self._rng.randrange(len(tasks))]
        self._run(pick)
        return {pick}, set(t for t in tasks if t is not pick)

    def result(self, task: _FakeTask) -> Any:
        self._run(task)
        if task.error is not None:
            raise task.error
        return task.value

    def map_ordered(self, thunks: Sequence[Callable[[], Any]]) -> List[Any]:
        tasks = [_FakeTask(thunk) for thunk in thunks]
        order = list(range(len(tasks)))
        self._rng.shuffle(order)
        for index in order:
            self._run(tasks[index])
        return [self.result(task) for task in tasks]

    def _run(self, task: _FakeTask) -> None:
        if task.done:
            return
        task.done = True
        try:
            task.value = task.thunk()
        except BaseException as exc:  # noqa: BLE001 — re-raised in result()
            task.error = exc

    def shutdown(self) -> None:
        pass


# ---------------------------------------------------------------------------
# Store views


class ParallelStoreView:
    """A thin proxy over the shared :class:`FactStore` for concurrent
    strata.

    Dict-backed probes are already safe under concurrent readers (the
    single writer of a predicate is the only stratum that reads its
    frontier, and lazy index builds are build-then-publish), but
    columnar relations mutate lazily on *read* (pending-row encoding,
    group building, probe counters) — those probes serialize behind
    one lock.  Everything else delegates to the underlying store.
    """

    __slots__ = ("_store", "_columnar_lock")

    def __init__(self, store: FactStore) -> None:
        self._store = store
        self._columnar_lock = threading.Lock()

    def probe(self, predicate, positions, key, delta_only=False):
        relation = self._store._relations.get(predicate)
        if relation is None:
            return ()
        if relation.backend == "columnar":
            with self._columnar_lock:
                return relation.probe(predicate, positions, key, delta_only)
        return relation.probe(predicate, positions, key, delta_only)

    def lookup(self, predicate, bound, delta_only=False):
        if not bound:
            return iter(self.probe(predicate, (), (), delta_only))
        positions = tuple(sorted(bound))
        key = tuple(bound[p] for p in positions)
        return iter(self.probe(predicate, positions, key, delta_only))

    def __getattr__(self, name):
        return getattr(self._store, name)

    def __len__(self):
        return len(self._store)

    def __contains__(self, fact):
        return self._store.contains(fact)

    def __iter__(self):
        return self._store.facts()


class _ShardView:
    """Per-worker view: the delta probe is filtered down to this
    worker's hash shard, and the *full* frontier's probe order is
    recorded so the merge barrier can restore serial order.

    Compiled delta plans drive from exactly one ``delta_only`` probe
    (the delta literal is always the plan's first scan), so ``order``
    maps each driving fact to its position in the serial probe tuple.
    """

    __slots__ = ("_parent", "index", "shards", "order", "assigned")

    def __init__(self, parent, index: int, shards: int) -> None:
        self._parent = parent
        self.index = index
        self.shards = shards
        self.order: Dict[Fact, int] = {}
        self.assigned = 0

    def probe(self, predicate, positions, key, delta_only=False):
        if not delta_only:
            return self._parent.probe(predicate, positions, key)
        full = self._parent.probe(predicate, positions, key, True)
        order = self.order
        shard, shards = self.index, self.shards
        mine = []
        for position, fact in enumerate(full):
            order[fact] = position
            if hash(fact) % shards == shard:
                mine.append(fact)
        self.assigned += len(mine)
        return tuple(mine)

    def lookup(self, predicate, bound, delta_only=False):
        if not bound:
            return iter(self.probe(predicate, (), (), delta_only))
        positions = tuple(sorted(bound))
        key = tuple(bound[p] for p in positions)
        return iter(self.probe(predicate, positions, key, delta_only))

    def __getattr__(self, name):
        return getattr(self._parent, name)


# ---------------------------------------------------------------------------
# Sharded enumeration


class ShardExecutor:
    """Fans a rule's delta plans out across hash shards and merges the
    per-shard match lists back into serial order.

    Installed on the engine as ``_shard_exec`` for the duration of a
    parallel run; :meth:`ChaseEngine._enumerate_planned` routes here.
    Workers only enumerate — the merged, deduped binding list is
    handed back to the (per-stratum) coordinator, which routes, fires
    and records provenance exactly like the serial engine.
    """

    def __init__(
        self,
        engine,
        scheduler,
        shards: int,
        metrics: Optional[MetricsRegistry] = None,
        min_shard_facts: Optional[int] = None,
    ) -> None:
        self.engine = engine
        self.scheduler = scheduler
        self.shards = max(1, int(shards))
        self.metrics = metrics
        #: Below this frontier size the plan runs unsharded on the
        #: stratum coordinator — fan-out costs more than it buys, and
        #: serial execution is trivially merge-order-identical.
        self.min_shard_facts = (
            2 * self.shards if min_shard_facts is None else min_shard_facts
        )

    def enumerate(self, engine, rule, plans, store, first_round):
        from .chase import _Binding, binding_dedup_key

        results: List[Any] = []
        seen: Set[Tuple] = set()
        if not plans.has_positives or first_round:
            # The first-round plan scans whole relations (no delta
            # probe to shard); run it on the coordinator.
            for substitution, premises in engine._planned_unique(
                plans.first_round, store, seen
            ):
                results.append(_Binding(substitution, premises))
            return results
        for _index, predicate, plan in plans.delta_plans:
            delta = store.delta(predicate)
            if not delta:
                continue
            if self.shards <= 1 or len(delta) < self.min_shard_facts:
                if self.metrics is not None:
                    self.metrics.counter("chase.parallel.serial_plans").inc()
                for substitution, premises in engine._planned_unique(
                    plan, store, seen
                ):
                    results.append(_Binding(substitution, premises))
                continue
            for substitution, premises in self._execute_sharded(plan, store):
                key = binding_dedup_key(substitution)
                if key in seen:
                    continue
                seen.add(key)
                results.append(_Binding(substitution, premises))
        return results

    def _execute_sharded(self, plan, store):
        """Run one delta plan across all shards; return the merged
        ``(substitution, premises)`` rows in serial probe order."""
        metrics = self.metrics
        views = [
            _ShardView(store, shard, self.shards)
            for shard in range(self.shards)
        ]

        def run_shard(view):
            # Exceptions are carried as values so the merge barrier
            # always completes and failure handling is deterministic.
            try:
                return ("ok", list(plan.execute(view)))
            except PlanFallback as exc:
                return ("fallback", exc)
            except Exception as exc:  # noqa: BLE001 — re-raised below
                return ("error", exc)

        barrier_start = time.perf_counter_ns() if metrics is not None else 0
        outcomes = self.scheduler.map_ordered(
            [(lambda v=view: run_shard(v)) for view in views]
        )
        if metrics is not None:
            metrics.histogram("chase.parallel.barrier_wait_ns").observe(
                time.perf_counter_ns() - barrier_start
            )
            metrics.counter("chase.parallel.sharded_plans").inc()
        # Deterministic failure policy: hard errors (lowest shard
        # first) beat PlanFallback, which the engine's enumerator
        # catches and converts to the legacy path — same observable
        # outcome as serial in both cases.
        for kind, payload in outcomes:
            if kind == "error":
                raise payload
        for kind, payload in outcomes:
            if kind == "fallback":
                raise payload
        merge_start = time.perf_counter_ns() if metrics is not None else 0
        merged = []
        sizes = []
        for view, (_kind, rows) in zip(views, outcomes):
            order = view.order
            sizes.append(view.assigned)
            for substitution, premises in rows:
                # premises[0] is the driving delta fact (the delta
                # literal is the plan's first scan); its recorded
                # probe position restores serial order.  Shards
                # partition driving facts, so positions never collide
                # across shards and a stable sort keeps each shard's
                # own (serial) sub-order intact.
                merged.append((order[premises[0]], substitution, premises))
        merged.sort(key=lambda row: row[0])
        if metrics is not None:
            for size in sizes:
                metrics.histogram("chase.parallel.shard_facts").observe(size)
            total = sum(sizes)
            mean = total / len(sizes) if sizes else 0.0
            skew = (max(sizes) / mean) if mean else 0.0
            metrics.gauge("chase.parallel.shard_skew").set(round(skew, 3))
            metrics.histogram("chase.parallel.merge_ns").observe(
                time.perf_counter_ns() - merge_start
            )
        return [(substitution, premises) for _pos, substitution, premises
                in merged]


# ---------------------------------------------------------------------------
# Stratum runner


def _run_stratum(
    engine,
    node: StratumNode,
    store,
    provenance: ProvenanceLog,
    null_factory: NullFactory,
    context: ExternalContext,
    violations: List,
    budget_base: int,
    metrics: Optional[MetricsRegistry],
) -> Tuple[int, int]:
    """One stratum's semi-naive loop, mirroring the serial engine's
    inner loop; returns ``(rounds, net_facts_added)``.

    Exclusive strata (externals / EGD / listener chains) use the
    global frontier exactly like serial; concurrent strata use
    delta bookkeeping scoped to their written predicates, which is
    observationally identical (ancestor predicates always carry an
    empty frontier by the time a reader stratum starts).
    """
    exclusive = node.exclusive
    aggregate_states: Dict[Tuple[int, int], AggregateState] = {}
    emitted_aggregates: Dict[Tuple[int, int, Tuple], Fact] = {}
    if exclusive:
        store.reset_delta_to_all()
    else:
        store.reset_delta_scoped(node.writes)
    base_counts = {p: store.count(p) for p in node.writes}
    start_total = len(store) if exclusive else 0
    progress = None
    if metrics is not None:
        clock = getattr(engine, "_progress_clock", None)
        kwargs = {"clock": clock} if clock is not None else {}
        progress = ChaseProgress(
            stall_threshold=engine.stall_threshold,
            heartbeat_interval=engine.heartbeat_interval,
            **kwargs,
        )
    rounds = 0
    with telemetry.span(
        "chase.stratum", stratum=node.index, rules=len(node.rules),
    ) as stratum_span:
        while True:
            rounds += 1
            engine._stratum_index = node.index
            engine._round = rounds
            if rounds > engine.max_rounds:
                raise EvaluationError(
                    f"chase exceeded {engine.max_rounds} rounds "
                    "in one stratum; the program may not "
                    "terminate"
                )
            round_start = time.perf_counter_ns() if metrics is not None else 0
            if exclusive:
                visible_before = len(store)
            else:
                visible_before = budget_base + sum(
                    store.count(p) - base_counts[p] for p in node.writes
                )
            visible = visible_before
            with telemetry.span(
                "chase.round", stratum=node.index, round=rounds,
            ) as round_span:
                for rule_index, rule in enumerate(node.rules):
                    fired = engine._apply_rule(
                        rule,
                        rule_index,
                        store,
                        provenance,
                        null_factory,
                        context,
                        aggregate_states,
                        emitted_aggregates,
                        first_round=(rounds == 1),
                    )
                    if progress is not None:
                        engine._track_progress(progress, fired, rule)
                    # Deterministic non-termination guard: size of the
                    # completed-ancestor cone plus own net additions —
                    # identical at every worker count (serial compares
                    # the true global size; divergence is only at the
                    # budget edge, which conformance skips).
                    if exclusive:
                        visible = len(store)
                    else:
                        visible = budget_base + sum(
                            store.count(p) - base_counts[p]
                            for p in node.writes
                        )
                    if visible > engine.max_facts:
                        raise EvaluationError(
                            f"chase exceeded {engine.max_facts} "
                            "facts; aborting as a "
                            "non-termination guard"
                        )
                round_span.set(new_facts=visible - visible_before)
            round_ns = 0
            if metrics is not None:
                round_ns = time.perf_counter_ns() - round_start
                metrics.counter("chase.iterations").inc()
                metrics.histogram("chase.round_ns").observe(round_ns)
            if exclusive:
                store.advance_delta()
            else:
                store.advance_delta_scoped(node.writes)
            if progress is not None:
                frontier = (
                    store.frontier_size()
                    if exclusive
                    else store.frontier_size_scoped(node.writes)
                )
                engine._publish_heartbeat(
                    progress,
                    node.index,
                    rounds,
                    new_facts=visible - visible_before,
                    frontier=frontier,
                    seconds=round_ns / 1e9,
                    total_facts=len(store),
                )
                metrics.gauge(
                    "chase.parallel.worker_rounds", stratum=node.index
                ).set(rounds)
                metrics.gauge(
                    "chase.parallel.worker_frontier", stratum=node.index
                ).set(frontier)
            if engine.egds:
                violations.extend(
                    enforce_egds(engine.egds, store,
                                 strict=engine.strict_egds)
                )
            if exclusive:
                if not store.has_delta():
                    break
            elif not store.has_delta_scoped(node.writes):
                break
        stratum_span.set(rounds=rounds)
    if exclusive:
        net = len(store) - start_total
    else:
        net = sum(store.count(p) - base_counts[p] for p in node.writes)
    return rounds, net


# ---------------------------------------------------------------------------
# Entry point


def run_parallel(engine, store: FactStore):
    """Parallel counterpart of :meth:`ChaseEngine.run` over an
    already-built store.  Output is bit-identical to the serial path
    (see the module docstring for the contract and its one budget
    caveat)."""
    from .chase import ChaseResult

    provenance = ProvenanceLog(enabled=engine.provenance_enabled)
    null_factory = engine._null_factory or NullFactory()
    violations: List[Any] = []
    strata = stratify(engine.rules)
    nodes = build_schedule(
        strata,
        has_egds=bool(engine.egds),
        has_listener=engine.listener is not None,
    )
    ancestors = _transitive_ancestors(nodes)

    metrics = MetricsRegistry() if telemetry.state.enabled else None
    engine._metrics = metrics
    engine._events = telemetry.state.events if telemetry.state.enabled \
        else None
    if engine.use_plans:
        engine._compile_plans(metrics)
    run_start = time.perf_counter_ns() if metrics is not None else 0
    nulls_before = null_factory.issued
    if metrics is not None:
        for node in nodes:
            for rule in node.rules:
                metrics.gauge(
                    "chase.rule_stratum",
                    rule=engine._rule_names[id(rule)],
                ).set(node.index)
        metrics.gauge("chase.parallel.workers").set(engine.parallelism)
        metrics.counter("chase.parallel.runs").inc()
    if engine._events is not None:
        engine._events.emit(
            "parallel_schedule",
            workers=engine.parallelism,
            strata=len(nodes),
            exclusive=sum(1 for node in nodes if node.exclusive),
            edges=sum(len(node.deps) for node in nodes),
        )

    # Freeze the relation table before workers start iterating it, and
    # normalize the frontier: predicates no stratum writes keep an
    # empty delta for the whole run — exactly what serial rounds >= 2
    # observe after the first global advance.
    predicates: Set[str] = set()
    for node in nodes:
        predicates |= node.writes | node.reads
    store.ensure_relations(predicates)
    store.clear_deltas()

    view = ParallelStoreView(store)
    context = ExternalContext(view, null_factory)

    factory = engine._scheduler_factory
    if factory is not None:
        made = factory(engine.parallelism)
        if isinstance(made, tuple):
            stratum_sched, shard_sched = made
        else:
            stratum_sched = shard_sched = made
    else:
        # Two pools: stratum tasks block on shard barriers, so sharing
        # one bounded pool could deadlock.
        stratum_sched = ThreadScheduler(
            min(engine.parallelism, max(1, len(nodes)))
        )
        shard_sched = ThreadScheduler(engine.parallelism)
    engine._shard_exec = ShardExecutor(
        engine, shard_sched, engine.parallelism, metrics
    )

    initial_size = len(store)
    added: Dict[int, int] = {}
    rounds_of: Dict[int, int] = {}
    prov_of: Dict[int, ProvenanceLog] = {}
    viol_of: Dict[int, List] = {}
    failures: Dict[int, BaseException] = {}
    total_rounds = 0

    def run_node(node: StratumNode):
        budget_base = initial_size + sum(
            added[ancestor] for ancestor in ancestors[node.index]
        )
        sub_provenance = ProvenanceLog(enabled=engine.provenance_enabled)
        sub_violations: List[Any] = []
        rounds, net = _run_stratum(
            engine, node, view, sub_provenance, null_factory, context,
            sub_violations, budget_base, metrics,
        )
        return rounds, net, sub_provenance, sub_violations

    try:
        with telemetry.span(
            "chase.run", rules=len(engine.rules), strata=len(nodes),
            input_facts=initial_size, parallelism=engine.parallelism,
        ) as run_span:
            completed: Set[int] = set()
            scheduled: Set[int] = set()
            running: Dict[Any, int] = {}
            #: Lowest failing stratum index so far; serial would have
            #: raised there, so only lower strata may still run (one
            #: of them might fail at an even lower index).
            failed_floor: Optional[int] = None

            while True:
                for node in nodes:
                    if node.index in completed or node.index in scheduled:
                        continue
                    if failed_floor is not None \
                            and node.index > failed_floor:
                        continue
                    if node.deps <= completed:
                        handle = stratum_sched.submit(
                            lambda n=node: run_node(n)
                        )
                        running[handle] = node.index
                        scheduled.add(node.index)
                if not running:
                    break
                if metrics is not None:
                    metrics.gauge("chase.parallel.strata_inflight").set(
                        len(running)
                    )
                done, _rest = stratum_sched.wait_any(set(running))
                for handle in done:
                    index = running.pop(handle)
                    try:
                        rounds, net, sub_provenance, sub_violations = \
                            stratum_sched.result(handle)
                    except Exception as exc:  # noqa: BLE001
                        # A failed stratum never joins `completed`, so
                        # its dependents stay unscheduled (the floor
                        # already blocks them) and still-eligible
                        # lower strata keep running — one might fail
                        # at an even lower index, which is the one
                        # serial would have raised.
                        failures[index] = exc
                        if failed_floor is None or index < failed_floor:
                            failed_floor = index
                    else:
                        rounds_of[index] = rounds
                        added[index] = net
                        prov_of[index] = sub_provenance
                        viol_of[index] = sub_violations
                        completed.add(index)
            if failures:
                raise failures[min(failures)]

            total_rounds = sum(rounds_of.values())
            # Stratum-order merge: provenance insertion order and EGD
            # violation order come out exactly as serial produced them.
            for node in nodes:
                provenance.absorb(prov_of[node.index])
                violations.extend(viol_of[node.index])
            store.advance_delta()
            run_span.set(
                rounds=total_rounds,
                facts=len(store),
                nulls_introduced=null_factory.issued - nulls_before,
                egd_violations=len(violations),
            )
    finally:
        engine._shard_exec = None
        stratum_sched.shutdown()
        if shard_sched is not stratum_sched:
            shard_sched.shutdown()

    snapshot = None
    if metrics is not None:
        metrics.counter("chase.runs").inc()
        metrics.counter("chase.egd_violations").inc(len(violations))
        metrics.gauge("chase.facts").set(len(store))
        metrics.histogram("chase.run_ns").observe(
            time.perf_counter_ns() - run_start
        )
        engine._record_memory_gauges(metrics, store, provenance)
        snapshot = metrics.snapshot()
        telemetry.state.registry.merge(metrics)
        engine._metrics = None
    engine._events = None
    return ChaseResult(
        store, provenance, null_factory, violations, total_rounds,
        telemetry_snapshot=snapshot,
        plan_report=engine.plan_report if engine.use_plans else None,
    )


# ---------------------------------------------------------------------------
# Harness helpers


def canonical_null_form(facts: Iterable[Fact]):
    """Renumber labelled nulls canonically: nulls are relabelled
    1, 2, ... by first occurrence over the facts in sorted (string)
    order.  Two fact sets are null-isomorphic iff their canonical
    forms are equal — the harness-side comparison for runs that used
    *different* factories (the engine itself never needs this: worker
    counts share one chained factory and agree on raw labels)."""
    from .atoms import Atom
    from .terms import Term

    renames: Dict[int, LabelledNull] = {}

    def rename(term: Term) -> Term:
        if isinstance(term, LabelledNull):
            fresh = renames.get(term.label)
            if fresh is None:
                fresh = LabelledNull(len(renames) + 1)
                renames[term.label] = fresh
            return fresh
        return term

    def masked_key(fact: Fact) -> str:
        # Sort with null labels masked out: the visiting order (and so
        # the renumbering) must not depend on the labels being erased.
        return str(
            Atom(
                fact.predicate,
                tuple(
                    LabelledNull(0) if isinstance(term, LabelledNull)
                    else term
                    for term in fact.terms
                ),
            )
        )

    canonical = []
    for fact in sorted(facts, key=masked_key):
        canonical.append(
            Atom(fact.predicate, tuple(rename(term) for term in fact.terms))
        )
    return frozenset(canonical)
