"""Rules: existential rules (TGDs), EGDs and aggregate specifications.

A Vadalog rule is a first-order sentence
``forall x,y (phi(x, y) -> exists z psi(x, z))`` where *phi* (the body)
and *psi* (the head) are conjunctions of atoms.  Following the Vadalog
convention, existential quantification is implicit: any head variable
that does not occur in the body is existentially quantified and the
chase satisfies it with a fresh labelled null.

Bodies may also carry negated literals (stratified), boolean conditions,
assignments and *monotonic aggregations* (Section 4.3 of the paper):
``R = msum(W, <I>)`` sums ``W`` over the bindings of the group defined
by the remaining head variables, keyed by contributor ``I`` — per
contributor only the "best" (monotone-direction) contribution counts,
which is exactly the mechanism that lets more-anonymized versions of a
tuple replace earlier ones during the anonymization cycle.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..errors import SafetyError
from .atoms import Assignment, Atom, Condition, Literal
from .expressions import Expression
from .terms import Term, Variable


#: Monotone direction per aggregate function: how to combine repeated
#: contributions from the same contributor.
AGGREGATE_FUNCTIONS = {
    "msum": "max",
    "mcount": "dedup",
    "mprod": "max",
    "mmin": "min",
    "mmax": "max",
    "munion": "union",
}


class AggregateSpec:
    """An aggregate assignment ``target = func(argument, <contributors>)``.

    ``argument`` is an expression evaluated per body binding;
    ``contributors`` is the tuple of variables identifying the
    contributor (``<I>`` in the paper's notation).  The group key is
    determined by the rule head: every head variable other than
    ``target``.
    """

    __slots__ = ("target", "function", "argument", "contributors")

    def __init__(
        self,
        target: Variable,
        function: str,
        argument: Optional[Expression],
        contributors: Sequence[Variable],
    ):
        if function not in AGGREGATE_FUNCTIONS:
            raise SafetyError(f"unknown aggregate function {function!r}")
        if function != "mcount" and argument is None:
            raise SafetyError(f"{function} requires an argument expression")
        self.target = target
        self.function = function
        self.argument = argument
        self.contributors = tuple(contributors)

    @property
    def combine_mode(self) -> str:
        return AGGREGATE_FUNCTIONS[self.function]

    def variables(self):
        yield self.target
        if self.argument is not None:
            yield from self.argument.variables()
        yield from self.contributors

    def __repr__(self):
        contrib = ", ".join(v.name for v in self.contributors)
        return (
            f"AggregateSpec({self.target.name} = {self.function}"
            f"(..., <{contrib}>))"
        )


class Rule:
    """An existential rule (TGD) with optional conditions, assignments,
    negation and at most a handful of aggregates."""

    def __init__(
        self,
        head: Sequence[Atom],
        body: Sequence[Literal],
        conditions: Sequence[Condition] = (),
        assignments: Sequence[Assignment] = (),
        aggregates: Sequence[AggregateSpec] = (),
        label: Optional[str] = None,
        declared_existentials: Sequence[Variable] = (),
        line: Optional[int] = None,
        column: Optional[int] = None,
        validate: bool = True,
    ):
        if not head:
            raise SafetyError("rule must have at least one head atom")
        self.head = tuple(head)
        self.body = tuple(body)
        self.conditions = tuple(conditions)
        self.assignments = tuple(assignments)
        self.aggregates = tuple(aggregates)
        self.label = label
        #: Variables the author *explicitly* marked existential with an
        #: ``exists(...)`` prefix.  Semantics are unchanged (existentials
        #: stay implicit, per the Vadalog convention) — the analyzer uses
        #: this to warn about undeclared existentials (VDL002).
        self.declared_existentials = frozenset(declared_existentials)
        #: 1-based source location of the rule's first token when parsed.
        self.line = line
        self.column = column
        if validate:
            self._validate()

    # -- static structure ------------------------------------------------

    def positive_body(self) -> List[Literal]:
        return [lit for lit in self.body if not lit.negated]

    def negative_body(self) -> List[Literal]:
        return [lit for lit in self.body if lit.negated]

    def body_predicates(self) -> Set[str]:
        return {lit.atom.predicate for lit in self.body}

    def head_predicates(self) -> Set[str]:
        return {atom.predicate for atom in self.head}

    def body_variables(self) -> Set[Variable]:
        found: Set[Variable] = set()
        for lit in self.body:
            found.update(lit.variables())
        return found

    def derived_variables(self) -> Set[Variable]:
        """Variables bound by assignments or aggregates (not by atoms)."""
        found = {a.target for a in self.assignments}
        found.update(agg.target for agg in self.aggregates)
        return found

    def head_variables(self) -> Set[Variable]:
        found: Set[Variable] = set()
        for atom in self.head:
            found.update(atom.variables())
        return found

    def frontier(self) -> Set[Variable]:
        """Variables shared between body and head (the rule frontier)."""
        return self.body_variables() & self.head_variables()

    def existential_variables(self) -> Set[Variable]:
        """Head variables bound neither in the body nor by assignments
        or aggregates — satisfied with fresh labelled nulls."""
        bound = self.body_variables() | self.derived_variables()
        return {v for v in self.head_variables() if v not in bound}

    @property
    def is_existential(self) -> bool:
        return bool(self.existential_variables())

    @property
    def has_aggregates(self) -> bool:
        return bool(self.aggregates)

    # -- safety ----------------------------------------------------------

    def _validate(self) -> None:
        positive_vars: Set[Variable] = set()
        for lit in self.positive_body():
            positive_vars.update(lit.variables())
        available = set(positive_vars)
        for assignment in self.assignments:
            missing = [
                v
                for v in assignment.input_variables()
                if v not in available
            ]
            if missing:
                names = ", ".join(v.name for v in missing)
                raise SafetyError(
                    f"assignment to {assignment.target.name} uses unbound "
                    f"variable(s) {names} in rule {self.label or self}"
                )
            available.add(assignment.target)
        for agg in self.aggregates:
            if agg.argument is not None:
                missing = [
                    v
                    for v in agg.argument.variables()
                    if v not in available
                ]
                if missing:
                    names = ", ".join(v.name for v in missing)
                    raise SafetyError(
                        f"aggregate {agg.function} uses unbound "
                        f"variable(s) {names}"
                    )
            for contributor in agg.contributors:
                if contributor not in available:
                    raise SafetyError(
                        f"aggregate contributor {contributor.name} "
                        "is unbound"
                    )
            available.add(agg.target)
        for lit in self.negative_body():
            for var in lit.variables():
                if var not in available and not var.is_anonymous:
                    raise SafetyError(
                        f"negated literal {lit} uses variable "
                        f"{var.name} not bound positively"
                    )
        for condition in self.conditions:
            for var in condition.variables():
                if var not in available:
                    raise SafetyError(
                        f"condition uses unbound variable {var.name}"
                    )

    def __repr__(self):
        body = ", ".join(str(lit) for lit in self.body)
        head = ", ".join(str(atom) for atom in self.head)
        tag = f"[{self.label}] " if self.label else ""
        return f"{tag}{head} :- {body}."

    __str__ = __repr__


class EGD:
    """An equality-generating dependency:
    ``phi(x) -> x_i = x_j`` (Rule 4 of Algorithm 1).

    When the chase finds a body match binding the two sides to different
    terms it must either unify them (if at least one is a labelled null)
    or report a *violation* for human inspection (both constants).
    """

    def __init__(
        self,
        body: Sequence[Literal],
        equalities: Sequence[Tuple[Variable, Variable]],
        label: Optional[str] = None,
        line: Optional[int] = None,
        column: Optional[int] = None,
    ):
        if not equalities:
            raise SafetyError("EGD must equate at least one variable pair")
        self.body = tuple(body)
        self.equalities = tuple(equalities)
        self.label = label
        self.line = line
        self.column = column
        body_vars: Set[Variable] = set()
        for lit in self.body:
            if not lit.negated:
                body_vars.update(lit.variables())
        for left, right in self.equalities:
            if left not in body_vars or right not in body_vars:
                raise SafetyError(
                    "EGD equality variables must occur in the positive body"
                )

    def __repr__(self):
        body = ", ".join(str(lit) for lit in self.body)
        eqs = ", ".join(f"{a.name} = {b.name}" for a, b in self.equalities)
        tag = f"[{self.label}] " if self.label else ""
        return f"{tag}{eqs} :- {body}."
