"""Standard external predicates shipped with the engine.

These are generic ``#`` externals useful across programs; the Vada-SA
framework registers its domain externals (``#risk``, ``#anonymize``,
``#rel``, ``#similar``) on top of these.
"""

from __future__ import annotations

from typing import Any, Iterable, Tuple

from .externals import ExternalRegistry, boolean_external


def _distinct(context, a, b):
    if a != b:
        yield (a, b)


def _range_impl(context, low, high, value):
    if value is None:
        for item in range(int(low), int(high)):
            yield (low, high, item)
    elif int(low) <= value < int(high):
        yield (low, high, value)


def _subset_impl(context, a, b):
    if frozenset(a) < frozenset(b):
        yield (a, b)


def _member_impl(context, item, collection):
    if item is None:
        for candidate in collection:
            yield (candidate, collection)
    elif item in collection:
        yield (item, collection)


def standard_registry() -> ExternalRegistry:
    """A registry pre-populated with the generic externals."""
    registry = ExternalRegistry()
    registry.register("distinct", _distinct)
    registry.register("range", _range_impl)
    registry.register("strictSubset", _subset_impl)
    registry.register("member", _member_impl)
    return registry
