"""Routing strategies — binding-order heuristics (Section 4.4).

The Vadalog system lets the user control which rule-body bindings are
privileged when several are available; the paper exploits this with a
"less significant first" strategy (anonymize low-weight tuples first)
and a "most risky first" strategy (suppress the quasi-identifier that
reduces risk the most).

A routing strategy is simply an ordering over candidate substitutions:
given the rule and the list of substitutions produced in a chase round,
it returns them in firing order.  Strategies may inspect bound values
(e.g. a weight variable) through the keys they are configured with.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from .rules import Rule
from .terms import Constant, Variable

#: A strategy maps (rule, substitutions) to reordered substitutions.
RoutingStrategy = Callable[[Rule, List[dict]], List[dict]]


def fifo_strategy(rule: Rule, bindings: List[dict]) -> List[dict]:
    """Default: fire bindings in discovery order."""
    return bindings


def sort_by_variable(
    variable_name: str, descending: bool = False, default: float = 0.0
) -> RoutingStrategy:
    """Order bindings by the numeric value bound to ``variable_name``.

    Bindings where the variable is unbound or non-numeric sort with
    ``default``.  With ``descending=False`` this yields the paper's
    "less significant first" strategy when pointed at the sampling
    weight variable... inverted: low weight = low significance = first,
    so ascending order on the weight is exactly it.
    """
    variable = Variable(variable_name)

    def key(binding: dict) -> float:
        term = binding.get(variable)
        if isinstance(term, Constant) and isinstance(
            term.value, (int, float)
        ):
            return float(term.value)
        return default

    def strategy(rule: Rule, bindings: List[dict]) -> List[dict]:
        return sorted(bindings, key=key, reverse=descending)

    return strategy


def less_significant_first(weight_variable: str = "W") -> RoutingStrategy:
    """Fire bindings carrying the smallest sampling weight first, so the
    anonymization cycle erodes the least statistically significant
    tuples before touching relevant ones (Section 4.4)."""
    return sort_by_variable(weight_variable, descending=False)


def most_risky_first(risk_variable: str = "R") -> RoutingStrategy:
    """Fire bindings with the highest risk first."""
    return sort_by_variable(risk_variable, descending=True, default=-1.0)


class RoutingTable:
    """Per-rule-label routing configuration for an evaluation."""

    def __init__(self, default: Optional[RoutingStrategy] = None):
        self._default = default or fifo_strategy
        self._by_label: Dict[str, RoutingStrategy] = {}

    def set_strategy(self, rule_label: str, strategy: RoutingStrategy):
        self._by_label[rule_label] = strategy

    def strategy_for(self, rule: Rule) -> RoutingStrategy:
        if rule.label and rule.label in self._by_label:
            return self._by_label[rule.label]
        return self._default

    def order(self, rule: Rule, bindings: List[dict]) -> List[dict]:
        return self.strategy_for(rule)(rule, bindings)
