"""repro — a reproduction of Vada-SA (Bellomarini et al., EDBT 2021):
reasoning-based financial data exchange with statistical
confidentiality.

Public API layers:

* :class:`VadaSA` — the production-style facade (register datasets,
  assess risk, anonymize, share).
* :mod:`repro.vadalog` — the Vadalog-style reasoning engine the
  framework is built on (parser, chase, aggregation, wardedness...).
* :mod:`repro.risk`, :mod:`repro.anonymize`, :mod:`repro.categorize`,
  :mod:`repro.business` — the framework's pluggable modules.
* :mod:`repro.data`, :mod:`repro.attack`, :mod:`repro.baselines` —
  the experimental substrates.
* :mod:`repro.telemetry` — opt-in observability (metrics registry,
  span tracing, profiling hooks) across the engine and framework.
"""

from .errors import (
    AnonymizationError,
    CategorizationError,
    EGDViolationError,
    EvaluationError,
    HierarchyError,
    ParseError,
    ReproError,
    SafetyError,
    SchemaError,
    StratificationError,
    VadalogError,
    WardednessError,
)
from . import telemetry
from .framework import VadaSA
from .model import (
    AttributeCategory,
    DomainHierarchy,
    ExperienceBase,
    IdentityOracle,
    MetadataDictionary,
    MicrodataDB,
    MicrodataSchema,
    survey_schema,
)

__version__ = "1.0.0"

__all__ = [
    "AnonymizationError",
    "AttributeCategory",
    "CategorizationError",
    "DomainHierarchy",
    "EGDViolationError",
    "EvaluationError",
    "ExperienceBase",
    "HierarchyError",
    "IdentityOracle",
    "MetadataDictionary",
    "MicrodataDB",
    "MicrodataSchema",
    "ParseError",
    "ReproError",
    "SafetyError",
    "SchemaError",
    "StratificationError",
    "VadaSA",
    "VadalogError",
    "WardednessError",
    "survey_schema",
    "telemetry",
    "__version__",
]
