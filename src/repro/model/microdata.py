"""The microdata DB: rows, weights, labelled-null cells.

A :class:`MicrodataDB` is the extensional object the whole framework
operates on: a named relation with a :class:`~repro.model.schema.
MicrodataSchema`, whose cells may hold labelled nulls once local
suppression (Algorithm 7) has run.  Rows are immutable mappings; all
anonymization operators return new rows, so a dataset snapshot can be
kept for information-loss accounting.
"""

from __future__ import annotations

import copy
from typing import (
    Any,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from ..errors import SchemaError
from ..vadalog.atoms import Atom
from ..vadalog.terms import LabelledNull, wrap
from .schema import AttributeCategory, MicrodataSchema


def is_suppressed(value: Any) -> bool:
    """True when a cell holds a labelled null (suppressed value)."""
    return isinstance(value, LabelledNull)


class MicrodataDB:
    """A named microdata relation M(i, q, a, W)."""

    def __init__(
        self,
        name: str,
        schema: MicrodataSchema,
        rows: Iterable[Mapping[str, Any]],
    ):
        self.name = name
        self.schema = schema
        self.rows: List[Dict[str, Any]] = []
        for index, row in enumerate(rows):
            normalized = dict(row)
            missing = [a for a in schema.attributes if a not in normalized]
            if missing:
                raise SchemaError(
                    f"row {index} of {name!r} misses attribute(s) "
                    f"{', '.join(missing)}"
                )
            extra = [a for a in normalized if a not in schema.categories]
            if extra:
                raise SchemaError(
                    f"row {index} of {name!r} has unknown attribute(s) "
                    f"{', '.join(extra)}"
                )
            self.rows.append(normalized)

    # -- basic accessors -----------------------------------------------------

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[Dict[str, Any]]:
        return iter(self.rows)

    def __getitem__(self, index: int) -> Dict[str, Any]:
        return self.rows[index]

    @property
    def quasi_identifiers(self) -> List[str]:
        return self.schema.quasi_identifiers

    @property
    def weight_attribute(self) -> Optional[str]:
        return self.schema.weight_attribute

    def weight_of(self, index: int, default: float = 1.0) -> float:
        """Sampling weight of a row (1.0 when the schema has none)."""
        attribute = self.weight_attribute
        if attribute is None:
            return default
        value = self.rows[index].get(attribute)
        if value is None or is_suppressed(value):
            return default
        return float(value)

    def weights(self) -> List[float]:
        return [self.weight_of(i) for i in range(len(self.rows))]

    def qi_values(
        self, index: int, attributes: Optional[Sequence[str]] = None
    ) -> Tuple[Any, ...]:
        """The row's values over the given (default: all) QIs."""
        attributes = (
            list(attributes)
            if attributes is not None
            else self.quasi_identifiers
        )
        row = self.rows[index]
        return tuple(row[a] for a in attributes)

    def suppressed_cells(
        self, attributes: Optional[Sequence[str]] = None
    ) -> int:
        """Count of labelled-null cells over the given attributes —
        the paper's "number of injected nulls" metric (Fig. 7a/7c)."""
        attributes = (
            list(attributes)
            if attributes is not None
            else list(self.schema.attributes)
        )
        return sum(
            1
            for row in self.rows
            for attribute in attributes
            if is_suppressed(row[attribute])
        )

    # -- mutation-by-copy -------------------------------------------------------

    def copy(self) -> "MicrodataDB":
        return MicrodataDB(
            self.name, self.schema, [dict(row) for row in self.rows]
        )

    def with_value(
        self, index: int, attribute: str, value: Any
    ) -> None:
        """In-place single-cell update (the anonymization cycle owns its
        working copy)."""
        if attribute not in self.schema.categories:
            raise SchemaError(f"unknown attribute {attribute!r}")
        self.rows[index][attribute] = value

    def drop_identifiers(self) -> "MicrodataDB":
        """The shared view: direct identifiers removed (first step of
        the anonymization cycle)."""
        kept = self.schema.shared_view()
        categories = {a: self.schema.categories[a] for a in kept}
        schema = MicrodataSchema(kept, categories, self.schema.descriptions)
        rows = [{a: row[a] for a in kept} for row in self.rows]
        return MicrodataDB(self.name, schema, rows)

    # -- engine bridge ------------------------------------------------------------

    def to_facts(self) -> List[Atom]:
        """Encode the dataset as the paper's extensional facts:

        * ``microDB(name)``
        * ``att(name, attribute, description)``
        * ``category(name, attribute, category)``
        * ``val(name, rowIndex, attribute, value)``
        """
        facts: List[Atom] = [Atom.of("microDB", self.name)]
        for attribute in self.schema.attributes:
            facts.append(
                Atom.of(
                    "att",
                    self.name,
                    attribute,
                    self.schema.descriptions.get(attribute, attribute),
                )
            )
            facts.append(
                Atom.of(
                    "category",
                    self.name,
                    attribute,
                    str(self.schema.categories[attribute]),
                )
            )
        for index, row in enumerate(self.rows):
            for attribute in self.schema.attributes:
                facts.append(
                    Atom(
                        "val",
                        (
                            wrap(self.name),
                            wrap(index),
                            wrap(attribute),
                            wrap(row[attribute]),
                        ),
                    )
                )
        return facts

    @classmethod
    def from_facts(
        cls, name: str, schema: MicrodataSchema, val_tuples: Iterable[Tuple]
    ) -> "MicrodataDB":
        """Rebuild a dataset from ``val(name, row, attribute, value)``
        tuples produced by a reasoning task."""
        rows: Dict[Any, Dict[str, Any]] = {}
        for db_name, row_id, attribute, value in val_tuples:
            if db_name != name:
                continue
            rows.setdefault(row_id, {})[attribute] = value
        ordered = [rows[key] for key in sorted(rows, key=_row_sort_key)]
        return cls(name, schema, ordered)

    def __repr__(self):
        return (
            f"MicrodataDB({self.name!r}, {len(self.rows)} rows, "
            f"{len(self.schema.attributes)} attributes)"
        )


def _row_sort_key(key: Any):
    return (0, key) if isinstance(key, int) else (1, str(key))
