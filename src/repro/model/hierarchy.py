"""Domain-knowledge hierarchies for global recoding (Algorithm 8).

The Vada-SA KB stores, per attribute domain, knowledge of the form::

    TypeOf(Area, City).  SubTypeOf(City, Region).
    InstOf(Milano, City).  InstOf(North, Region).
    IsA(Milano, North).  IsA(Torino, North).

Global recoding climbs the type hierarchy: a value of type *City* rolls
up to the *Region* instance it ``IsA``-relates to.  The structure is
inherently recursive — Region may roll further up to Country — so the
hierarchy also offers multi-level generalization paths.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from ..errors import HierarchyError
from ..vadalog.atoms import Atom
from ..vadalog.terms import wrap


class DomainHierarchy:
    """Types, subtype edges, value instances and roll-up (IsA) edges."""

    def __init__(self):
        # attribute -> its (bottom) type
        self._attribute_type: Dict[str, str] = {}
        # type -> direct supertype
        self._supertype: Dict[str, str] = {}
        # value -> its type
        self._value_type: Dict[Any, str] = {}
        # value -> parent value (IsA)
        self._parent: Dict[Any, Any] = {}

    # -- construction ------------------------------------------------------

    def set_attribute_type(self, attribute: str, type_name: str) -> None:
        self._attribute_type[attribute] = type_name

    def add_subtype(self, subtype: str, supertype: str) -> None:
        if subtype == supertype:
            raise HierarchyError(f"type {subtype!r} cannot be its own super")
        self._supertype[subtype] = supertype
        self._check_type_acyclic(subtype)

    def add_instance(self, value: Any, type_name: str) -> None:
        self._value_type[value] = type_name

    def add_is_a(self, value: Any, parent: Any) -> None:
        if value == parent:
            raise HierarchyError(f"value {value!r} cannot roll up to itself")
        self._parent[value] = parent
        self._check_value_acyclic(value)

    def _check_type_acyclic(self, start: str) -> None:
        seen = {start}
        current = start
        while current in self._supertype:
            current = self._supertype[current]
            if current in seen:
                raise HierarchyError(
                    f"type hierarchy cycle through {current!r}"
                )
            seen.add(current)

    def _check_value_acyclic(self, start: Any) -> None:
        seen = {start}
        current = start
        while current in self._parent:
            current = self._parent[current]
            if current in seen:
                raise HierarchyError(
                    f"IsA cycle through value {current!r}"
                )
            seen.add(current)

    # -- queries ---------------------------------------------------------------

    def type_of_attribute(self, attribute: str) -> Optional[str]:
        return self._attribute_type.get(attribute)

    def supertype_of(self, type_name: str) -> Optional[str]:
        return self._supertype.get(type_name)

    def type_of_value(self, value: Any) -> Optional[str]:
        return self._value_type.get(value)

    def can_generalize(self, attribute: str, value: Any) -> bool:
        """Is one more roll-up step available for this cell?"""
        return self.generalize(attribute, value) is not None

    def generalize(self, attribute: str, value: Any) -> Optional[Any]:
        """One step of global recoding: the parent value whose type is
        the direct supertype of the value's type (Algorithm 8).

        Returns None when no further generalization is known.
        """
        value_type = self._value_type.get(value)
        if value_type is None:
            return None
        supertype = self._supertype.get(value_type)
        if supertype is None:
            return None
        parent = self._parent.get(value)
        if parent is None:
            return None
        parent_type = self._value_type.get(parent)
        if parent_type is not None and parent_type != supertype:
            raise HierarchyError(
                f"IsA target {parent!r} has type {parent_type!r}, "
                f"expected {supertype!r}"
            )
        return parent

    def generalization_path(self, attribute: str, value: Any) -> List[Any]:
        """The full roll-up chain from a value to the hierarchy top."""
        path = [value]
        current = value
        while True:
            parent = self.generalize(attribute, current)
            if parent is None:
                break
            path.append(parent)
            current = parent
        return path

    def level_of(self, value: Any) -> int:
        """Generalization level: 0 for leaf values, and one more than
        the highest child for roll-up targets (the height in the IsA
        forest) — so recoding always strictly increases the level."""
        children: Dict[Any, List[Any]] = {}
        for child, parent in self._parent.items():
            children.setdefault(parent, []).append(child)

        def height(node: Any, depth: int = 0) -> int:
            if depth > 64 or node not in children:
                return 0
            return 1 + max(
                height(child, depth + 1) for child in children[node]
            )

        return height(value)

    # -- engine bridge --------------------------------------------------------------

    def to_facts(self) -> List[Atom]:
        """The KB facts of Section 4.3: typeOf/subTypeOf/instOf/isA."""
        facts: List[Atom] = []
        for attribute, type_name in self._attribute_type.items():
            facts.append(Atom.of("typeOf", attribute, type_name))
        for subtype, supertype in self._supertype.items():
            facts.append(Atom.of("subTypeOf", subtype, supertype))
        for value, type_name in self._value_type.items():
            facts.append(Atom.of("instOf", value, type_name))
        for value, parent in self._parent.items():
            facts.append(Atom.of("isA", value, parent))
        return facts

    @classmethod
    def italian_geography(cls) -> "DomainHierarchy":
        """The paper's running example: cities roll up to the three
        macro-areas used by the Inflation & Growth survey."""
        hierarchy = cls()
        hierarchy.set_attribute_type("Area", "City")
        hierarchy.add_subtype("City", "Region")
        hierarchy.add_subtype("Region", "Country")
        areas = {
            "North": ["Milano", "Torino", "Genova", "Venezia", "Bologna"],
            "Center": ["Roma", "Firenze", "Perugia", "Ancona"],
            "South": ["Napoli", "Bari", "Palermo", "Catanzaro"],
        }
        hierarchy.add_instance("Italy", "Country")
        for region, cities in areas.items():
            hierarchy.add_instance(region, "Region")
            hierarchy.add_is_a(region, "Italy")
            for city in cities:
                hierarchy.add_instance(city, "City")
                hierarchy.add_is_a(city, region)
        return hierarchy

    @classmethod
    def from_intervals(
        cls,
        attribute: str,
        levels: Sequence[Sequence[Any]],
        type_names: Optional[Sequence[str]] = None,
    ) -> "DomainHierarchy":
        """Build a band hierarchy from explicit levels.

        ``levels[0]`` are the leaf values; ``levels[k+1]`` the coarser
        bands; mapping is positional by proportion (each coarse band
        covers an equal share of the finer level, last band absorbing
        the remainder) — the common numeric-banding scheme.
        """
        hierarchy = cls()
        if type_names is None:
            type_names = [f"{attribute}_L{k}" for k in range(len(levels))]
        hierarchy.set_attribute_type(attribute, type_names[0])
        for k in range(len(levels) - 1):
            hierarchy.add_subtype(type_names[k], type_names[k + 1])
        for k, level_values in enumerate(levels):
            for value in level_values:
                hierarchy.add_instance(value, type_names[k])
        for k in range(len(levels) - 1):
            fine, coarse = list(levels[k]), list(levels[k + 1])
            if not coarse:
                raise HierarchyError("empty hierarchy level")
            per_band = max(1, len(fine) // len(coarse))
            for position, value in enumerate(fine):
                band = min(position // per_band, len(coarse) - 1)
                hierarchy.add_is_a(value, coarse[band])
        return hierarchy
