"""Labelled-null match semantics and group formation.

Section 4.3: once local suppression injects labelled nulls into
quasi-identifier cells, a semantics must define when two QI tuples fall
into the same aggregation group.

* **Maybe-match** (the paper's choice, after Ciglic et al.):
  ``q =⊥ q'`` holds when the values are equal constants **or at least
  one side is a labelled null**.  A null-carrying tuple therefore joins
  *multiple* groups — groups stop partitioning the dataset — which is
  what makes a single suppression raise the frequency of every tuple it
  may match (Figure 5).
* **Standard** (Skolem-chase) semantics: a labelled null equals only
  itself.  Each suppression creates a brand-new value, so suppressed
  tuples never merge and nulls proliferate (the red curves of Fig. 7c).

Both semantics expose the same interface: per-row *match frequency*
(how many rows =⊥-match this row on the chosen QIs, including itself)
and *matched weight sums* (the Σ W over matching rows used by
re-identification risk).  The maybe-match computation groups rows by
null pattern and joins pattern pairs on their common non-null
positions, so it stays near-linear while patterns are few — which holds
during anonymization, where suppression introduces nulls sparsely.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Dict, FrozenSet, List, Optional, Sequence, Tuple

from ..vadalog.terms import LabelledNull
from .microdata import MicrodataDB, is_suppressed


class NullSemantics:
    """Interface for =⊥ group formation over quasi-identifiers."""

    name = "abstract"

    def match_counts(
        self,
        db: MicrodataDB,
        attributes: Optional[Sequence[str]] = None,
    ) -> List[int]:
        """For each row, the number of rows (including itself) whose QI
        tuple =⊥-matches it."""
        return self.match_aggregate(db, attributes, values=None)[0]

    def match_weight_sums(
        self,
        db: MicrodataDB,
        attributes: Optional[Sequence[str]] = None,
    ) -> List[float]:
        """For each row, Σ weight over =⊥-matching rows."""
        return self.match_aggregate(db, attributes, values=db.weights())[1]

    def match_aggregate(
        self,
        db: MicrodataDB,
        attributes: Optional[Sequence[str]],
        values: Optional[List[float]],
    ) -> Tuple[List[int], List[float]]:
        """Compute counts and (optionally) value sums in one pass."""
        raise NotImplementedError

    def matches_combination(
        self, row: Dict[str, Any], combination: Sequence[Tuple[str, Any]]
    ) -> bool:
        """Does the row =⊥-match a partial combination of (attribute,
        value) pairs?  Used by SUDA's sample-unique detection."""
        raise NotImplementedError


class StandardSemantics(NullSemantics):
    """Skolem semantics: ⊥i = ⊥j iff i = j.  Exact dictionary grouping
    works because labelled nulls are hashable, distinct values."""

    name = "standard"

    def match_aggregate(self, db, attributes, values):
        attributes = (
            list(attributes)
            if attributes is not None
            else db.quasi_identifiers
        )
        groups: Dict[Tuple, List[int]] = defaultdict(list)
        for index in range(len(db)):
            groups[db.qi_values(index, attributes)].append(index)
        counts = [0] * len(db)
        sums = [0.0] * len(db)
        for members in groups.values():
            total = len(members)
            weight_sum = (
                sum(values[i] for i in members) if values is not None else 0.0
            )
            for index in members:
                counts[index] = total
                sums[index] = weight_sum
        return counts, sums

    def matches_combination(self, row, combination):
        return all(row[attribute] == value for attribute, value in combination)


class MaybeMatchSemantics(NullSemantics):
    """The paper's =⊥: a labelled null matches anything."""

    name = "maybe-match"

    def match_aggregate(self, db, attributes, values):
        attributes = (
            list(attributes)
            if attributes is not None
            else db.quasi_identifiers
        )
        n = len(db)
        counts = [0] * n
        sums = [0.0] * n
        if not attributes or n == 0:
            # Zero QIs: every row matches every row.
            total_value = sum(values) if values is not None else 0.0
            return [n] * n, [total_value] * n

        # Partition rows by null pattern over the chosen attributes.
        patterns: Dict[FrozenSet[str], List[int]] = defaultdict(list)
        for index in range(n):
            row = db.rows[index]
            pattern = frozenset(
                a for a in attributes if is_suppressed(row[a])
            )
            patterns[pattern].append(index)

        pattern_list = list(patterns.items())
        # For every ordered pattern pair (P_query, P_data), count for
        # each query row how many data rows agree on the positions that
        # are non-null on *both* sides; all other positions maybe-match.
        for query_pattern, query_rows in pattern_list:
            for data_pattern, data_rows in pattern_list:
                common = [
                    a
                    for a in attributes
                    if a not in query_pattern and a not in data_pattern
                ]
                index_map: Dict[Tuple, Tuple[int, float]] = {}
                if common:
                    grouped: Dict[Tuple, List[int]] = defaultdict(list)
                    for data_index in data_rows:
                        key = tuple(
                            db.rows[data_index][a] for a in common
                        )
                        grouped[key].append(data_index)
                    for key, members in grouped.items():
                        value_sum = (
                            sum(values[i] for i in members)
                            if values is not None
                            else 0.0
                        )
                        index_map[key] = (len(members), value_sum)
                    for query_index in query_rows:
                        key = tuple(
                            db.rows[query_index][a] for a in common
                        )
                        entry = index_map.get(key)
                        if entry is not None:
                            counts[query_index] += entry[0]
                            sums[query_index] += entry[1]
                else:
                    total = len(data_rows)
                    value_sum = (
                        sum(values[i] for i in data_rows)
                        if values is not None
                        else 0.0
                    )
                    for query_index in query_rows:
                        counts[query_index] += total
                        sums[query_index] += value_sum
        return counts, sums

    def matches_combination(self, row, combination):
        for attribute, value in combination:
            cell = row[attribute]
            if is_suppressed(cell) or is_suppressed(value):
                continue
            if cell != value:
                return False
        return True


#: Default semantics used by the framework (the paper's choice).
MAYBE_MATCH = MaybeMatchSemantics()
STANDARD = StandardSemantics()


def semantics_by_name(name: str) -> NullSemantics:
    """Look up a semantics by its name (``maybe-match``/``standard``)."""
    table = {
        MAYBE_MATCH.name: MAYBE_MATCH,
        STANDARD.name: STANDARD,
    }
    try:
        return table[name]
    except KeyError:
        raise ValueError(
            f"unknown null semantics {name!r}; expected one of "
            f"{sorted(table)}"
        ) from None
