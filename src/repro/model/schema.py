"""Microdata schemas and attribute categories.

Section 2.1 of the paper: a microdata DB is a relation of schema
``M(i, q, a, W)`` where *i* are direct identifiers, *q*
quasi-identifiers, *a* non-identifying attributes, and *W* a sampling
weight.  :class:`AttributeCategory` enumerates the treatments and
:class:`MicrodataSchema` carries one category per attribute.
"""

from __future__ import annotations

import enum
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..errors import SchemaError


class AttributeCategory(enum.Enum):
    """The four attribute treatments of Section 2.1 / Figure 4."""

    IDENTIFIER = "Identifier"
    QUASI_IDENTIFIER = "Quasi-identifier"
    NON_IDENTIFYING = "Non-identifying"
    WEIGHT = "Sampling Weight"

    @classmethod
    def from_label(cls, label: str) -> "AttributeCategory":
        """Parse the textual labels used in the metadata dictionary."""
        normalized = label.strip().lower().replace("_", "-")
        mapping = {
            "identifier": cls.IDENTIFIER,
            "direct identifier": cls.IDENTIFIER,
            "quasi-identifier": cls.QUASI_IDENTIFIER,
            "quasi identifier": cls.QUASI_IDENTIFIER,
            "non-identifying": cls.NON_IDENTIFYING,
            "non identifying": cls.NON_IDENTIFYING,
            "sampling weight": cls.WEIGHT,
            "weight": cls.WEIGHT,
        }
        category = mapping.get(normalized)
        if category is None:
            raise SchemaError(f"unknown attribute category {label!r}")
        return category

    def __str__(self):
        return self.value


class MicrodataSchema:
    """Attribute names, one category each, and optional descriptions."""

    def __init__(
        self,
        attributes: Sequence[str],
        categories: Mapping[str, AttributeCategory],
        descriptions: Optional[Mapping[str, str]] = None,
    ):
        self.attributes: Tuple[str, ...] = tuple(attributes)
        if len(set(self.attributes)) != len(self.attributes):
            raise SchemaError("duplicate attribute names in schema")
        self.categories: Dict[str, AttributeCategory] = dict(categories)
        self.descriptions: Dict[str, str] = dict(descriptions or {})
        missing = [a for a in self.attributes if a not in self.categories]
        if missing:
            raise SchemaError(
                f"attributes without a category: {', '.join(missing)}"
            )
        unknown = [a for a in self.categories if a not in self.attributes]
        if unknown:
            raise SchemaError(
                f"categories for unknown attributes: {', '.join(unknown)}"
            )
        weights = self.weight_attributes
        if len(weights) > 1:
            raise SchemaError(
                f"multiple sampling-weight attributes: {', '.join(weights)}"
            )

    # -- category views ---------------------------------------------------

    def of_category(self, category: AttributeCategory) -> List[str]:
        return [
            attribute
            for attribute in self.attributes
            if self.categories[attribute] is category
        ]

    @property
    def identifiers(self) -> List[str]:
        return self.of_category(AttributeCategory.IDENTIFIER)

    @property
    def quasi_identifiers(self) -> List[str]:
        return self.of_category(AttributeCategory.QUASI_IDENTIFIER)

    @property
    def non_identifying(self) -> List[str]:
        return self.of_category(AttributeCategory.NON_IDENTIFYING)

    @property
    def weight_attributes(self) -> List[str]:
        return self.of_category(AttributeCategory.WEIGHT)

    @property
    def weight_attribute(self) -> Optional[str]:
        weights = self.weight_attributes
        return weights[0] if weights else None

    def category_of(self, attribute: str) -> AttributeCategory:
        try:
            return self.categories[attribute]
        except KeyError:
            raise SchemaError(f"unknown attribute {attribute!r}") from None

    # -- derivation --------------------------------------------------------

    def with_categories(
        self, overrides: Mapping[str, AttributeCategory]
    ) -> "MicrodataSchema":
        """A copy with some categories replaced (post-categorization)."""
        categories = dict(self.categories)
        categories.update(overrides)
        return MicrodataSchema(self.attributes, categories, self.descriptions)

    def shared_view(self) -> List[str]:
        """Attributes a recipient sees after the anonymization cycle
        drops direct identifiers (and keeps everything else)."""
        return [
            attribute
            for attribute in self.attributes
            if self.categories[attribute] is not AttributeCategory.IDENTIFIER
        ]

    def __eq__(self, other):
        return (
            isinstance(other, MicrodataSchema)
            and self.attributes == other.attributes
            and self.categories == other.categories
        )

    def __repr__(self):
        parts = ", ".join(
            f"{a}:{self.categories[a].name[0]}" for a in self.attributes
        )
        return f"MicrodataSchema({parts})"


def survey_schema(
    identifiers: Sequence[str] = (),
    quasi_identifiers: Sequence[str] = (),
    non_identifying: Sequence[str] = (),
    weight: Optional[str] = None,
    descriptions: Optional[Mapping[str, str]] = None,
) -> MicrodataSchema:
    """Convenience constructor from per-category attribute lists."""
    attributes: List[str] = (
        list(identifiers) + list(quasi_identifiers) + list(non_identifying)
    )
    categories: Dict[str, AttributeCategory] = {}
    for attribute in identifiers:
        categories[attribute] = AttributeCategory.IDENTIFIER
    for attribute in quasi_identifiers:
        categories[attribute] = AttributeCategory.QUASI_IDENTIFIER
    for attribute in non_identifying:
        categories[attribute] = AttributeCategory.NON_IDENTIFYING
    if weight is not None:
        attributes.append(weight)
        categories[weight] = AttributeCategory.WEIGHT
    return MicrodataSchema(attributes, categories, descriptions)
