"""The metadata dictionary and the experience base (Section 4.1).

Schema independence comes from the meta-level: Vada-SA reasons over
facts *about* microdata DBs — ``MicroDB(name)``,
``Att(microDB, name, description)``, ``Category(microDB, att, cat)`` —
rather than over their specific columns.  The experience base
``ExpBase(attName, category)`` stores expert knowledge reused by the
recursive categorization of Algorithm 1.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..errors import SchemaError
from ..vadalog.atoms import Atom
from .schema import AttributeCategory, MicrodataSchema


class AttributeEntry:
    """One row of the Attribute metadata table (Figure 4, left)."""

    __slots__ = ("micro_db", "name", "description")

    def __init__(self, micro_db: str, name: str, description: str = ""):
        self.micro_db = micro_db
        self.name = name
        self.description = description

    def __repr__(self):
        return f"AttributeEntry({self.micro_db!r}, {self.name!r})"


class MetadataDictionary:
    """Registered microdata DBs, their attributes and categories."""

    def __init__(self):
        self._micro_dbs: List[str] = []
        self._attributes: Dict[str, List[AttributeEntry]] = {}
        # (micro_db, attribute) -> category (derived extensional part)
        self._categories: Dict[Tuple[str, str], AttributeCategory] = {}

    # -- registration -------------------------------------------------------

    def register(
        self,
        micro_db: str,
        attributes: Sequence[Tuple[str, str]],
    ) -> None:
        """Register a microdata DB with (name, description) attributes."""
        if micro_db in self._attributes:
            raise SchemaError(f"microdata DB {micro_db!r} already registered")
        self._micro_dbs.append(micro_db)
        self._attributes[micro_db] = [
            AttributeEntry(micro_db, name, description)
            for name, description in attributes
        ]

    def register_schema(self, micro_db: str, schema: MicrodataSchema) -> None:
        """Register a DB straight from a schema, importing categories."""
        self.register(
            micro_db,
            [
                (name, schema.descriptions.get(name, name))
                for name in schema.attributes
            ],
        )
        for name in schema.attributes:
            self.set_category(micro_db, name, schema.categories[name])

    def set_category(
        self, micro_db: str, attribute: str, category: AttributeCategory
    ) -> None:
        if micro_db not in self._attributes:
            raise SchemaError(f"unknown microdata DB {micro_db!r}")
        if attribute not in {e.name for e in self._attributes[micro_db]}:
            raise SchemaError(
                f"unknown attribute {attribute!r} of {micro_db!r}"
            )
        self._categories[(micro_db, attribute)] = category

    # -- queries -----------------------------------------------------------------

    def micro_dbs(self) -> List[str]:
        return list(self._micro_dbs)

    def attributes(self, micro_db: str) -> List[AttributeEntry]:
        try:
            return list(self._attributes[micro_db])
        except KeyError:
            raise SchemaError(f"unknown microdata DB {micro_db!r}") from None

    def category(
        self, micro_db: str, attribute: str
    ) -> Optional[AttributeCategory]:
        return self._categories.get((micro_db, attribute))

    def categorized_schema(self, micro_db: str) -> MicrodataSchema:
        """Build a MicrodataSchema once every attribute has a category."""
        entries = self.attributes(micro_db)
        categories: Dict[str, AttributeCategory] = {}
        for entry in entries:
            category = self._categories.get((micro_db, entry.name))
            if category is None:
                raise SchemaError(
                    f"attribute {entry.name!r} of {micro_db!r} has no "
                    "category yet: run attribute categorization first"
                )
            categories[entry.name] = category
        return MicrodataSchema(
            [entry.name for entry in entries],
            categories,
            {entry.name: entry.description for entry in entries},
        )

    # -- engine bridge ----------------------------------------------------------------

    def to_facts(self) -> List[Atom]:
        facts: List[Atom] = []
        for micro_db in self._micro_dbs:
            facts.append(Atom.of("microDB", micro_db))
            for entry in self._attributes[micro_db]:
                facts.append(
                    Atom.of("att", micro_db, entry.name, entry.description)
                )
        for (micro_db, attribute), category in self._categories.items():
            facts.append(
                Atom.of("category", micro_db, attribute, str(category))
            )
        return facts


class ExperienceBase:
    """``ExpBase(attributeName, category)`` — expert knowledge that the
    categorizer of Algorithm 1 consults and (optionally, Rule 3)
    recursively extends with consolidated decisions."""

    def __init__(
        self,
        entries: Optional[Mapping[str, AttributeCategory]] = None,
    ):
        self._entries: Dict[str, AttributeCategory] = dict(entries or {})

    def know(self, attribute: str, category: AttributeCategory) -> None:
        self._entries[attribute] = category

    def forget(self, attribute: str) -> None:
        self._entries.pop(attribute, None)

    def category_of(self, attribute: str) -> Optional[AttributeCategory]:
        return self._entries.get(attribute)

    def entries(self) -> Dict[str, AttributeCategory]:
        return dict(self._entries)

    def __len__(self):
        return len(self._entries)

    def __contains__(self, attribute: str) -> bool:
        return attribute in self._entries

    def to_facts(self) -> List[Atom]:
        return [
            Atom.of("expBase", attribute, str(category))
            for attribute, category in self._entries.items()
        ]

    @classmethod
    def banking_defaults(cls) -> "ExperienceBase":
        """A seed experience base with attribute names common across
        the Bank of Italy microdata DBs (Section 2 examples)."""
        c = AttributeCategory
        return cls(
            {
                "Id": c.IDENTIFIER,
                "FiscalCode": c.IDENTIFIER,
                "SSN": c.IDENTIFIER,
                "VAT": c.IDENTIFIER,
                "Area": c.QUASI_IDENTIFIER,
                "Region": c.QUASI_IDENTIFIER,
                "City": c.QUASI_IDENTIFIER,
                "Sector": c.QUASI_IDENTIFIER,
                "Employees": c.QUASI_IDENTIFIER,
                "Age": c.QUASI_IDENTIFIER,
                "Occupation": c.QUASI_IDENTIFIER,
                "Residential Rev.": c.QUASI_IDENTIFIER,
                "Export Rev.": c.QUASI_IDENTIFIER,
                "Growth": c.NON_IDENTIFYING,
                "Growth6mos": c.NON_IDENTIFYING,
                "Export to DE": c.NON_IDENTIFYING,
                "Weight": c.WEIGHT,
            }
        )
