"""The identity oracle O(i', q', I) and context selection.

Section 2.1 assumes a (realistic) external data source containing all
respondent identities; re-identification means linking a microdata
tuple to one (or very few) oracle tuples.  The oracle is also where the
*context* lives: a selection of oracle tuples relevant to the domain of
discourse (e.g. only firms in Milan), against which sampling weights
are estimated.
"""

from __future__ import annotations

from collections import defaultdict
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from ..errors import SchemaError


class IdentityOracle:
    """A relation of direct identifiers, quasi-identifiers and the
    respondent identity."""

    def __init__(
        self,
        identifiers: Sequence[str],
        quasi_identifiers: Sequence[str],
        identity_attribute: str,
        rows: Iterable[Mapping[str, Any]],
    ):
        self.identifiers = tuple(identifiers)
        self.quasi_identifiers = tuple(quasi_identifiers)
        self.identity_attribute = identity_attribute
        self.rows: List[Dict[str, Any]] = []
        expected = (
            set(self.identifiers)
            | set(self.quasi_identifiers)
            | {identity_attribute}
        )
        for index, row in enumerate(rows):
            normalized = dict(row)
            missing = expected - set(normalized)
            if missing:
                raise SchemaError(
                    f"oracle row {index} misses {sorted(missing)}"
                )
            self.rows.append(normalized)
        self._qi_index: Optional[Dict[Tuple, List[int]]] = None
        self._id_indexes: Dict[str, Dict[Any, List[int]]] = {}

    def __len__(self):
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    # -- context -----------------------------------------------------------

    def context(
        self, predicate: Callable[[Mapping[str, Any]], bool]
    ) -> "IdentityOracle":
        """Select the oracle tuples relevant to a domain of discourse
        (Section 2.1, "Context and sampling weight")."""
        return IdentityOracle(
            self.identifiers,
            self.quasi_identifiers,
            self.identity_attribute,
            [row for row in self.rows if predicate(row)],
        )

    # -- linkage lookups ----------------------------------------------------

    def _ensure_qi_index(self) -> Dict[Tuple, List[int]]:
        if self._qi_index is None:
            index: Dict[Tuple, List[int]] = defaultdict(list)
            for position, row in enumerate(self.rows):
                key = tuple(row[a] for a in self.quasi_identifiers)
                index[key].append(position)
            self._qi_index = dict(index)
        return self._qi_index

    def match_by_identifier(
        self, attribute: str, value: Any
    ) -> List[Dict[str, Any]]:
        """Join on a single direct identifier — by definition selects at
        most one tuple (direct identifiers are keys for O)."""
        if attribute not in self.identifiers:
            raise SchemaError(
                f"{attribute!r} is not a direct identifier of the oracle"
            )
        index = self._id_indexes.get(attribute)
        if index is None:
            index = defaultdict(list)
            for position, row in enumerate(self.rows):
                index[row[attribute]].append(position)
            self._id_indexes[attribute] = index
        return [self.rows[i] for i in index.get(value, ())]

    def match_by_quasi_identifiers(
        self,
        values: Mapping[str, Any],
        treat_none_as_wildcard: bool = True,
    ) -> List[Dict[str, Any]]:
        """Join on a subset of quasi-identifiers: the blocking step of
        the Section 2.2 attack strategy.  ``None`` values (or missing
        keys) act as wildcards — which is how a suppressed microdata
        cell looks to an attacker."""
        constrained = {
            attribute: value
            for attribute, value in values.items()
            if attribute in self.quasi_identifiers
            and (value is not None or not treat_none_as_wildcard)
        }
        if len(constrained) == len(self.quasi_identifiers):
            key = tuple(
                constrained[a] for a in self.quasi_identifiers
            )
            return [self.rows[i] for i in self._ensure_qi_index().get(key, ())]
        return [
            row
            for row in self.rows
            if all(row[a] == v for a, v in constrained.items())
        ]

    def frequency(self, values: Mapping[str, Any]) -> int:
        """|σ(O)| for a QI combination — the population frequency the
        sampling weight estimates."""
        return len(self.match_by_quasi_identifiers(values))

    def __repr__(self):
        return (
            f"IdentityOracle({len(self.rows)} identities, "
            f"qis={list(self.quasi_identifiers)})"
        )
