"""repro.model — microdata model: schemas, datasets, oracle, nulls,
metadata dictionary and domain hierarchies."""

from .hierarchy import DomainHierarchy
from .metadata import AttributeEntry, ExperienceBase, MetadataDictionary
from .microdata import MicrodataDB, is_suppressed
from .nulls import (
    MAYBE_MATCH,
    STANDARD,
    MaybeMatchSemantics,
    NullSemantics,
    StandardSemantics,
    semantics_by_name,
)
from .oracle import IdentityOracle
from .schema import AttributeCategory, MicrodataSchema, survey_schema

__all__ = [
    "AttributeCategory",
    "AttributeEntry",
    "DomainHierarchy",
    "ExperienceBase",
    "IdentityOracle",
    "MAYBE_MATCH",
    "MaybeMatchSemantics",
    "MetadataDictionary",
    "MicrodataDB",
    "MicrodataSchema",
    "NullSemantics",
    "STANDARD",
    "StandardSemantics",
    "is_suppressed",
    "semantics_by_name",
    "survey_schema",
]
