"""Mondrian-style multidimensional generalization baseline.

ARX — the SDC comparator tool the paper cites — popularized greedy
multidimensional schemes in the spirit of Mondrian (LeFevre et al.):
recursively partition the dataset on one quasi-identifier at a time
while every partition keeps at least ``k`` rows, then *generalize* each
partition's values per attribute to their least common ancestor in the
domain hierarchy (or to a set-valued "span" when no hierarchy is
available).

This is the classical *global recoding done bottom-up*: utility is
traded uniformly inside each partition.  It contrasts with Vada-SA's
tuple-local greedy cycle, which touches only risky tuples — the
comparison bench quantifies the difference in information loss.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Dict, List, NamedTuple, Optional, Sequence, Tuple

from ..errors import AnonymizationError
from ..model.hierarchy import DomainHierarchy
from ..model.microdata import MicrodataDB


class MondrianResult(NamedTuple):
    """Outcome of the Mondrian baseline."""

    db: MicrodataDB
    partitions: int
    generalized_cells: int

    @property
    def average_partition_size(self) -> float:
        return len(self.db) / self.partitions if self.partitions else 0.0


def _split_candidates(
    rows: List[int],
    db: MicrodataDB,
    attributes: Sequence[str],
    k: int,
) -> List[Tuple[str, Any]]:
    """Attribute/value pairs that split the partition into two sides of
    >= k rows each, ordered by balance (best first)."""
    candidates = []
    for attribute in attributes:
        frequency = Counter(db.rows[i][attribute] for i in rows)
        if len(frequency) < 2:
            continue
        for value in frequency:
            left = frequency[value]
            right = len(rows) - left
            if left >= k and right >= k:
                balance = abs(left - right)
                candidates.append((balance, attribute, value))
    candidates.sort(key=lambda item: item[0])
    return [(attribute, value) for _, attribute, value in candidates]


def _generalize_partition(
    db: MicrodataDB,
    rows: List[int],
    attributes: Sequence[str],
    hierarchy: Optional[DomainHierarchy],
) -> int:
    """Replace every differing attribute value in the partition with a
    common generalization.  Returns the number of changed cells."""
    changed = 0
    for attribute in attributes:
        values = {db.rows[i][attribute] for i in rows}
        if len(values) == 1:
            continue
        replacement = _common_ancestor(hierarchy, attribute, values)
        if replacement is None:
            # No hierarchy path: span value (ARX-style set category).
            replacement = "|".join(sorted(str(v) for v in values))
        for index in rows:
            if db.rows[index][attribute] != replacement:
                db.with_value(index, attribute, replacement)
                changed += 1
    return changed


def _common_ancestor(
    hierarchy: Optional[DomainHierarchy],
    attribute: str,
    values,
) -> Optional[Any]:
    if hierarchy is None:
        return None
    paths = []
    for value in values:
        path = hierarchy.generalization_path(attribute, value)
        if len(path) == 1:
            return None  # some value has no roll-up: no common ancestor
        paths.append(path)
    candidate_sets = [set(path[1:]) for path in paths]
    common = set.intersection(*candidate_sets)
    if not common:
        return None
    # The lowest common ancestor: the one appearing earliest in paths.
    reference = paths[0]
    for node in reference[1:]:
        if node in common:
            return node
    return None


def mondrian_k_anonymity(
    db: MicrodataDB,
    k: int = 2,
    hierarchy: Optional[DomainHierarchy] = None,
    attributes: Optional[Sequence[str]] = None,
) -> MondrianResult:
    """Run the greedy Mondrian partitioning + generalization."""
    if k < 1:
        raise AnonymizationError(f"k must be >= 1, got {k}")
    if len(db) < k:
        raise AnonymizationError(
            f"dataset of {len(db)} rows cannot be {k}-anonymous"
        )
    working = db.copy()
    attributes = (
        list(attributes)
        if attributes is not None
        else working.quasi_identifiers
    )

    partitions: List[List[int]] = []
    stack: List[List[int]] = [list(range(len(working)))]
    while stack:
        rows = stack.pop()
        candidates = _split_candidates(rows, working, attributes, k)
        if not candidates:
            partitions.append(rows)
            continue
        attribute, value = candidates[0]
        left = [i for i in rows if working.rows[i][attribute] == value]
        right = [i for i in rows if working.rows[i][attribute] != value]
        stack.append(left)
        stack.append(right)

    generalized = 0
    for rows in partitions:
        generalized += _generalize_partition(
            working, rows, attributes, hierarchy
        )
    return MondrianResult(working, len(partitions), generalized)
