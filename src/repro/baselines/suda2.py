"""Procedural SUDA2 baseline (Manning, Haglin & Keane 2008).

The recursive special-uniques search the paper cites: finds all minimal
sample uniques up to a maximum size by depth-first recursion over
attribute prefixes, using the key SUDA2 property that every (m+1)-MSU
restricted to m of its attributes must be... *not* unique on any proper
subset, and must be composed of values that are "special" within the
subfile.  This implementation keeps the recursion simple (subfile
partitioning on one attribute value at a time with uniqueness counting)
— it is the comparison point for the declarative Algorithm 6 and must
produce identical MSU sets.
"""

from __future__ import annotations

import itertools
from collections import Counter
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..model.microdata import MicrodataDB


def suda2_msus(
    db: MicrodataDB,
    attributes: Optional[Sequence[str]] = None,
    max_size: Optional[int] = None,
) -> Dict[int, List[FrozenSet[str]]]:
    """All minimal sample uniques per row, found recursively.

    The recursion searches subsets in depth-first attribute order; a
    candidate subset is counted over the file once (grouped pass), and
    a unique subset is an MSU when none of its (m-1)-subsets is unique
    for that row — the minimality check the declarative Rule 7 states.
    """
    attributes = (
        list(attributes) if attributes is not None else db.quasi_identifiers
    )
    if max_size is None:
        max_size = len(attributes)
    n = len(db)

    # Uniqueness per subset computed by grouped counting, memoized.
    unique_on: Dict[Tuple[str, ...], Set[int]] = {}

    def uniques(subset: Tuple[str, ...]) -> Set[int]:
        cached = unique_on.get(subset)
        if cached is not None:
            return cached
        counter: Counter = Counter()
        keys = []
        for index in range(n):
            key = tuple(db.rows[index][a] for a in subset)
            keys.append(key)
            counter[key] += 1
        found = {
            index for index in range(n) if counter[keys[index]] == 1
        }
        unique_on[subset] = found
        return found

    msus: Dict[int, List[FrozenSet[str]]] = {}

    def record(index: int, subset: Tuple[str, ...]) -> None:
        subset_set = frozenset(subset)
        existing = msus.setdefault(index, [])
        if any(prior <= subset_set for prior in existing):
            return
        existing.append(subset_set)

    # Depth-first over subset sizes; prune branches whose row-set of
    # uniques is already covered by smaller MSUs.
    for size in range(1, max_size + 1):
        for subset in itertools.combinations(attributes, size):
            for index in uniques(subset):
                # minimality: no (size-1)-subset may be unique for index
                if size > 1:
                    minimal = True
                    for smaller in itertools.combinations(subset, size - 1):
                        if index in uniques(smaller):
                            minimal = False
                            break
                    if not minimal:
                        continue
                record(index, subset)
    return msus


def suda2_risky_rows(
    db: MicrodataDB,
    k: int = 3,
    attributes: Optional[Sequence[str]] = None,
) -> List[int]:
    """Rows having an MSU smaller than k (the Algorithm 6 Rule 8
    criterion) per the procedural search."""
    msus = suda2_msus(db, attributes=attributes, max_size=max(1, k))
    return sorted(
        index
        for index, sets in msus.items()
        if any(len(s) < k for s in sets)
    )
