"""Procedural SDC baseline (sdcMicro-style local suppression).

The comparison point the paper argues against: a classical,
schema-coupled, procedural k-anonymity suppressor.  It implements the
standard greedy "suppress the most selective attribute of every unsafe
group member" loop *without* the maybe-match semantics (a suppressed
cell is treated as a distinct category, as sdcMicro's ``localSuppression``
does with its missing-value category), without business-knowledge
clusters and without an explanation trace — so benchmarks can quantify
what the declarative framework buys.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, NamedTuple, Optional, Sequence, Tuple

from ..errors import AnonymizationError
from ..model.microdata import MicrodataDB, is_suppressed

#: The shared missing-value category used by the procedural baseline —
#: sdcMicro-style: all suppressed cells fall into one NA bucket (unlike
#: Vada-SA's labelled nulls, which stay distinguishable symbols).
SUPPRESSED = "<NA>"


class ProceduralResult(NamedTuple):
    """Outcome of the procedural suppressor."""

    db: MicrodataDB
    suppressions: int
    iterations: int
    converged: bool


def _frequencies(
    db: MicrodataDB, attributes: Sequence[str]
) -> Tuple[Counter, List[Tuple]]:
    keys = [
        tuple(db.rows[index][a] for a in attributes)
        for index in range(len(db))
    ]
    return Counter(keys), keys


def procedural_k_anonymity(
    db: MicrodataDB,
    k: int = 2,
    attribute_priority: Optional[Sequence[str]] = None,
    max_iterations: int = 1000,
) -> ProceduralResult:
    """Greedy local suppression until every QI combination (with
    suppressed cells as their own category) occurs >= k times.

    ``attribute_priority`` is the suppression order; by default the
    most *selective* attribute first (most distinct values), the usual
    sdcMicro ``importance`` default.
    """
    if k < 1:
        raise AnonymizationError(f"k must be >= 1, got {k}")
    working = db.copy()
    attributes = list(working.quasi_identifiers)
    if attribute_priority is None:
        distinct = {
            attribute: len({row[attribute] for row in working.rows})
            for attribute in attributes
        }
        attribute_priority = sorted(
            attributes, key=lambda a: -distinct[a]
        )
    suppressions = 0
    iterations = 0
    converged = False
    while iterations < max_iterations:
        iterations += 1
        frequency, keys = _frequencies(working, attributes)
        unsafe = [
            index
            for index in range(len(working))
            if frequency[keys[index]] < k
        ]
        if not unsafe:
            converged = True
            break
        progressed = False
        for index in unsafe:
            row = working.rows[index]
            for attribute in attribute_priority:
                if row[attribute] != SUPPRESSED and not is_suppressed(
                    row[attribute]
                ):
                    working.with_value(index, attribute, SUPPRESSED)
                    suppressions += 1
                    progressed = True
                    break
        if not progressed:
            break  # every QI already suppressed and still unsafe
    return ProceduralResult(working, suppressions, iterations, converged)


def sample_uniques(
    db: MicrodataDB, attributes: Optional[Sequence[str]] = None
) -> List[int]:
    """Rows whose exact QI combination occurs once (no null semantics,
    no subsets — the plain SDC notion)."""
    attributes = (
        list(attributes) if attributes is not None else db.quasi_identifiers
    )
    frequency, keys = _frequencies(db, attributes)
    return [
        index for index in range(len(db)) if frequency[keys[index]] == 1
    ]
