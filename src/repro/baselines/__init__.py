"""repro.baselines — procedural comparison implementations
(sdcMicro-style suppression, recursive SUDA2)."""

from .mondrian import MondrianResult, mondrian_k_anonymity
from .procedural import (
    ProceduralResult,
    procedural_k_anonymity,
    sample_uniques,
)
from .suda2 import suda2_msus, suda2_risky_rows
from .swapping import SwapResult, random_swap

__all__ = [
    "MondrianResult",
    "ProceduralResult",
    "SwapResult",
    "mondrian_k_anonymity",
    "random_swap",
    "procedural_k_anonymity",
    "sample_uniques",
    "suda2_msus",
    "suda2_risky_rows",
]
