"""Record-swapping baseline (perturbative SDC).

A classical perturbative technique from the SDC toolbox the paper's
yardstick covers: exchange quasi-identifier values between pairs of
records, so a linkage attack that succeeds technically "re-identifies"
the *wrong* respondent.  Unlike suppression/recoding the data stays
fully populated — but the joint QI distribution is perturbed, which is
precisely the utility cost Vada-SA's minimal-removal approach avoids.

Implemented as *random pair swapping within strata*: records are
stratified by the attributes NOT being swapped (so marginals are
preserved by construction and the perturbation stays local), then a
fraction of records has the target attribute value exchanged with a
random stratum partner.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, NamedTuple, Optional, Sequence, Tuple

import numpy as np

from ..errors import AnonymizationError
from ..model.microdata import MicrodataDB


class SwapResult(NamedTuple):
    """Outcome of a swapping pass."""

    db: MicrodataDB
    swapped_rows: int
    attribute: str


def random_swap(
    db: MicrodataDB,
    attribute: str,
    fraction: float = 0.1,
    seed: int = 33,
    stratify_by: Optional[Sequence[str]] = None,
) -> SwapResult:
    """Swap ``attribute`` values between random pairs of records.

    ``stratify_by`` restricts swap partners to records agreeing on the
    given attributes (default: no stratification — global swaps).
    ``fraction`` is the share of rows selected for swapping; selected
    rows are paired, so an odd one out is left unswapped.
    """
    if attribute not in db.schema.categories:
        raise AnonymizationError(f"unknown attribute {attribute!r}")
    if not 0 < fraction <= 1:
        raise AnonymizationError(
            f"fraction must be in (0, 1], got {fraction}"
        )
    rng = np.random.default_rng(seed)
    working = db.copy()

    strata: Dict[Tuple, List[int]] = defaultdict(list)
    keys = list(stratify_by or ())
    for index, row in enumerate(working.rows):
        strata[tuple(row[a] for a in keys)].append(index)

    swapped = 0
    for members in strata.values():
        selected = [
            index for index in members if rng.random() < fraction
        ]
        rng.shuffle(selected)
        for first, second in zip(selected[::2], selected[1::2]):
            a_value = working.rows[first][attribute]
            b_value = working.rows[second][attribute]
            if a_value == b_value:
                continue
            working.with_value(first, attribute, b_value)
            working.with_value(second, attribute, a_value)
            swapped += 2
    return SwapResult(working, swapped, attribute)
