"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch a single base class.  Engine-level errors (parsing,
evaluation, safety) live under :class:`VadalogError`; framework-level
errors (schema, categorization, anonymization) under their own branches.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro package."""


class VadalogError(ReproError):
    """Base class for reasoning-engine errors."""


class ParseError(VadalogError):
    """A Vadalog source text could not be parsed.

    Carries the 1-based ``line`` and ``column`` of the offending token
    when available.
    """

    def __init__(self, message, line=None, column=None):
        location = ""
        if line is not None:
            location = f" at line {line}"
            if column is not None:
                location += f", column {column}"
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


class SafetyError(VadalogError):
    """A rule violates a safety condition (e.g. unbound head variable
    that is not existential, negated atom with unrestricted variables)."""


class StratificationError(VadalogError):
    """The program has no stratification (negation/aggregation cycle)."""


class WardednessError(VadalogError):
    """The program is not warded (static check requested and failed)."""


class StaticAnalysisError(VadalogError):
    """The static analyzer found error-level diagnostics and the caller
    asked for a pre-flight check (the default for :meth:`Program.run`).

    Carries the full :class:`~repro.vadalog.analysis.AnalysisReport` as
    ``report`` so callers can render or inspect individual diagnostics;
    the message embeds the rendered error diagnostics.  Pass
    ``preflight=False`` to skip the check (escape hatch).
    """

    def __init__(self, message, report=None):
        super().__init__(message)
        self.report = report


class EvaluationError(VadalogError):
    """A runtime failure while evaluating a program (builtin type error,
    unknown external predicate, non-termination guard tripped...)."""


class EGDViolationError(VadalogError):
    """An equality-generating dependency tried to equate two distinct
    constants.  Surfaced for human-in-the-loop inspection (Algorithm 1)."""

    def __init__(self, message, fact_a=None, fact_b=None):
        super().__init__(message)
        self.fact_a = fact_a
        self.fact_b = fact_b


class UnknownExternalError(EvaluationError):
    """A ``#``-prefixed atom references an external predicate that was
    never registered."""


class SchemaError(ReproError):
    """A microdata DB or identity oracle is structurally invalid."""


class CategorizationError(ReproError):
    """Attribute categorization failed or is ambiguous and needs manual
    inspection."""


class AnonymizationError(ReproError):
    """The anonymization cycle could not reach the risk threshold."""


class HierarchyError(ReproError):
    """Domain hierarchy is malformed (unknown value, cycle, missing
    roll-up target)."""
