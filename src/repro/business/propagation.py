"""Risk propagation along business links (Algorithm 9).

Glue between the ownership substrate and the anonymization cycle: turn
an :class:`~repro.business.ownership.OwnershipGraph` plus a microdata
DB (whose identifier column names the companies) into row clusters, and
run the enhanced cycle where the risk of every tuple is the combined
risk of its cluster, 1 − Π(1 − ρ_c).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Set

from ..anonymize.cycle import AnonymizationCycle, CycleResult
from ..anonymize.base import AnonymizationMethod
from ..errors import ReproError
from ..model.microdata import MicrodataDB
from ..risk.base import RiskMeasure
from .ownership import OwnershipGraph, row_clusters


def clusters_for_db(
    db: MicrodataDB,
    ownership: OwnershipGraph,
    company_attribute: Optional[str] = None,
) -> List[Set[int]]:
    """Row clusters induced by company control over the dataset.

    ``company_attribute`` defaults to the (single) direct identifier —
    in the Inflation & Growth survey the company Id.
    """
    if company_attribute is None:
        identifiers = db.schema.identifiers
        if len(identifiers) != 1:
            raise ReproError(
                "cannot infer the company attribute: the schema has "
                f"{len(identifiers)} direct identifiers; pass "
                "company_attribute explicitly"
            )
        company_attribute = identifiers[0]
    companies = [row.get(company_attribute) for row in db.rows]
    return row_clusters(companies, ownership.control_clusters())


def anonymize_with_business_knowledge(
    db: MicrodataDB,
    ownership: OwnershipGraph,
    measure: RiskMeasure,
    method: AnonymizationMethod,
    company_attribute: Optional[str] = None,
    **cycle_kwargs,
) -> CycleResult:
    """Run the enhanced anonymization cycle of Algorithm 9."""
    clusters = clusters_for_db(db, ownership, company_attribute)
    cycle = AnonymizationCycle(
        measure, method, clusters=clusters, **cycle_kwargs
    )
    return cycle.run(db)
