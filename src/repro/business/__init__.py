"""repro.business — business-knowledge modeling: company control and
risk propagation (Section 4.4)."""

from .households import anonymize_households, household_clusters
from .ownership import (
    CONTROL_THRESHOLD,
    OwnershipGraph,
    row_clusters,
)
from .propagation import anonymize_with_business_knowledge, clusters_for_db

__all__ = [
    "CONTROL_THRESHOLD",
    "OwnershipGraph",
    "anonymize_with_business_knowledge",
    "clusters_for_db",
    "row_clusters",
    "anonymize_households",
    "household_clusters",
]
