"""Household / hierarchical-unit risk grouping.

Section 4.4 grounds cluster risk "along the lines of what usually done
to estimate the risk of households and hierarchical structures
[Hundepool et al.]": all respondents of the same household share the
probability that at least one of them is re-identified.  For survey
microdata the household is usually an explicit attribute (household id,
family code, firm-group code), so the clustering is direct — no
ownership closure needed.

:func:`household_clusters` builds the row clusters from such an
attribute; combined with
:func:`~repro.risk.cluster.propagate_over_clusters` (or the cycle's
``clusters=`` option) it yields household-level statistical disclosure
control.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Dict, List, Optional, Sequence, Set

from ..anonymize.base import AnonymizationMethod
from ..anonymize.cycle import AnonymizationCycle, CycleResult
from ..errors import ReproError
from ..model.microdata import MicrodataDB, is_suppressed
from ..risk.base import RiskMeasure


def household_clusters(
    db: MicrodataDB,
    household_attribute: str,
    minimum_size: int = 2,
) -> List[Set[int]]:
    """Row clusters induced by a shared household/unit attribute.

    Rows with a suppressed or missing household value form no cluster.
    Only clusters of at least ``minimum_size`` rows matter for risk
    propagation (singletons carry their own risk anyway).
    """
    if household_attribute not in db.schema.categories:
        raise ReproError(
            f"unknown household attribute {household_attribute!r}"
        )
    members: Dict[Any, Set[int]] = defaultdict(set)
    for index, row in enumerate(db.rows):
        value = row[household_attribute]
        if value is None or is_suppressed(value):
            continue
        members[value].add(index)
    return [
        cluster
        for cluster in members.values()
        if len(cluster) >= minimum_size
    ]


def anonymize_households(
    db: MicrodataDB,
    household_attribute: str,
    measure: RiskMeasure,
    method: AnonymizationMethod,
    **cycle_kwargs,
) -> CycleResult:
    """Run the anonymization cycle with household-level risk."""
    clusters = household_clusters(db, household_attribute)
    cycle = AnonymizationCycle(
        measure, method, clusters=clusters, **cycle_kwargs
    )
    return cycle.run(db)
