"""Company ownership and control (Section 4.4).

The paper's business-knowledge example: companies are linked when one
*controls* the other, directly (owning > 50% of the shares) or jointly
through controlled intermediaries:

    (1) Own(X, Y, W), W > 0.5 -> Rel(X, Y).
    (2) Rel(X, Z), Own(Z, Y, W), msum(W, <Z>) > 0.5 -> Rel(X, Y).

:class:`OwnershipGraph` stores the shareholdings and offers a native
fixpoint identical to the Vadalog rules (which are also shipped as
source text in :mod:`repro.vadalog_programs` and exercised against the
engine in the tests).  Control clusters are the connected components of
the control relation — all members share disclosure risk.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

import networkx as nx

from ..errors import ReproError

#: Control requires strictly more than this share fraction.
CONTROL_THRESHOLD = 0.5


class OwnershipGraph:
    """Direct shareholdings Own(owner, owned, share)."""

    def __init__(self, edges: Iterable[Tuple[str, str, float]] = ()):
        # owner -> owned -> share
        self._shares: Dict[str, Dict[str, float]] = defaultdict(dict)
        self._companies: Set[str] = set()
        for owner, owned, share in edges:
            self.add_share(owner, owned, share)

    def add_share(self, owner: str, owned: str, share: float) -> None:
        if not 0 <= share <= 1:
            raise ReproError(
                f"share must be a fraction in [0, 1], got {share}"
            )
        if owner == owned:
            raise ReproError(f"company {owner!r} cannot own itself")
        self._shares[owner][owned] = share
        self._companies.add(owner)
        self._companies.add(owned)

    @property
    def companies(self) -> Set[str]:
        return set(self._companies)

    def share(self, owner: str, owned: str) -> float:
        return self._shares.get(owner, {}).get(owned, 0.0)

    def edges(self) -> List[Tuple[str, str, float]]:
        return [
            (owner, owned, share)
            for owner, owned_map in self._shares.items()
            for owned, share in owned_map.items()
        ]

    def __len__(self):
        return sum(len(owned) for owned in self._shares.values())

    # -- control closure ------------------------------------------------------

    def control_relation(self) -> Set[Tuple[str, str]]:
        """All (X, Y) with X controlling Y — the fixpoint of the two
        Vadalog rules.

        Rule 1 seeds direct majorities; Rule 2 adds Y when the summed
        shares of Y held by X's controlled set (plus X itself) exceed
        the threshold.  Monotone, so a simple fixpoint terminates.
        """
        controls: Set[Tuple[str, str]] = set()
        for owner, owned_map in self._shares.items():
            for owned, share in owned_map.items():
                if share > CONTROL_THRESHOLD:
                    controls.add((owner, owned))
        changed = True
        while changed:
            changed = False
            controlled_by: Dict[str, Set[str]] = defaultdict(set)
            for controller, controlled in controls:
                controlled_by[controller].add(controlled)
            for controller in list(self._companies):
                # X's voting bloc: X plus everything it controls.
                bloc = {controller} | controlled_by.get(controller, set())
                held: Dict[str, float] = defaultdict(float)
                for member in bloc:
                    for owned, share in self._shares.get(member, {}).items():
                        held[owned] += share
                for owned, total in held.items():
                    if owned == controller:
                        continue
                    if total > CONTROL_THRESHOLD:
                        pair = (controller, owned)
                        if pair not in controls:
                            controls.add(pair)
                            changed = True
        return controls

    def control_clusters(self) -> List[Set[str]]:
        """Connected components of the control relation (companies with
        no control link form singleton clusters omitted here)."""
        graph = nx.Graph()
        for controller, controlled in self.control_relation():
            graph.add_edge(controller, controlled)
        return [set(component) for component in nx.connected_components(graph)]

    # -- engine bridge ------------------------------------------------------------

    def to_facts(self):
        from ..vadalog.atoms import Atom

        return [
            Atom.of("own", owner, owned, share)
            for owner, owned, share in self.edges()
        ]


def row_clusters(
    company_of_row: Sequence[Optional[str]],
    company_clusters: Iterable[Set[str]],
) -> List[Set[int]]:
    """Map company clusters onto dataset row indices.

    ``company_of_row[i]`` is the company identifier of row *i* (None
    when the row has no company).  Only clusters touching at least two
    rows matter for risk propagation.
    """
    rows_of_company: Dict[str, List[int]] = defaultdict(list)
    for index, company in enumerate(company_of_row):
        if company is not None:
            rows_of_company[company].append(index)
    clusters: List[Set[int]] = []
    seen: Set[int] = set()
    for companies in company_clusters:
        members: Set[int] = set()
        for company in companies:
            members.update(rows_of_company.get(company, ()))
        members -= seen
        if len(members) >= 2:
            clusters.append(members)
            seen |= members
    return clusters
