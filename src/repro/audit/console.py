"""Text/JSON rendering for the ``python -m repro audit`` console.

All renderers take an :class:`~repro.audit.ledger.AuditLedger` and
return a string, so the CLI, the CI artifact step and the tests share
one formatting path.  The text forms are deliberately plain (no ANSI,
stable column layout) — they are meant to be uploaded as CI artifacts
and diffed across runs.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from .ledger import ACTIONS, AuditLedger


def render_summary(ledger: AuditLedger, fmt: str = "text") -> str:
    """The one-page audit summary of a run."""
    summary = ledger.summary()
    if fmt == "json":
        return json.dumps(summary, indent=2, sort_keys=True)
    lines = ["Confidentiality audit summary"]
    cells = summary["by_action"]
    lines.append(
        f"  decisions: {summary['decisions']} over "
        f"{summary['cells']} cell(s) in "
        f"{summary['iterations']} iteration(s)"
    )
    lines.append(
        "  actions: " + ", ".join(
            f"{action} {cells.get(action, 0)}" for action in ACTIONS
        )
    )
    if summary["by_measure"]:
        lines.append(
            "  by measure: " + ", ".join(
                f"{measure} {count}"
                for measure, count in sorted(
                    summary["by_measure"].items()
                )
            )
        )
    outcome = summary["outcome"]
    if outcome:
        lines.append("  outcome:")
        lines.append(
            f"    converged: {outcome.get('converged')} after "
            f"{outcome.get('iterations')} iteration(s) "
            f"({outcome.get('steps')} step(s))"
        )
        lines.append(
            f"    risky tuples: {outcome.get('initial_risky')} initial "
            f"-> {outcome.get('final_risky')} final "
            f"(T={outcome.get('threshold')}, "
            f"measure={outcome.get('measure')})"
        )
        lines.append(
            f"    final risk: max {_num(outcome.get('final_max_score'))}"
            f", mean {_num(outcome.get('final_mean_score'))}"
        )
        lines.append(
            f"    utility: {outcome.get('nulls_injected')} null(s) "
            f"injected, {outcome.get('recoded_cells')} cell(s) recoded, "
            f"{outcome.get('published_cells')} QI cell(s) published "
            f"untouched"
        )
        lines.append(
            f"    information loss: "
            f"{_num(outcome.get('information_loss'))}, "
            f"utility-weighted loss: "
            f"{_num(outcome.get('utility_weighted_loss'))}"
        )
    else:
        lines.append("  outcome: (no cycle_summary event in stream)")
    if summary["risk_grounded_rows"]:
        lines.append(
            f"  declarative grounding: risk rule chains recorded for "
            f"{summary['risk_grounded_rows']} row(s)"
        )
    return "\n".join(lines)


def render_timeline(ledger: AuditLedger, fmt: str = "text") -> str:
    """The utility-vs-risk trajectory, one line per cycle iteration."""
    points = ledger.timeline()
    if fmt == "json":
        return json.dumps(points, indent=2, sort_keys=True)
    if not points:
        return "(no cycle_iteration events in stream)"
    header = (
        f"{'iter':>4}  {'risky':>6}  {'max':>8}  {'mean':>8}  "
        f"{'acted':>5}  {'suppress':>8}  {'recode':>6}  {'keep':>4}"
    )
    lines = [header, "-" * len(header)]
    for point in points:
        lines.append(
            f"{point.get('iteration', '?'):>4}  "
            f"{point.get('risky', '?'):>6}  "
            f"{_num(point.get('max_score')):>8}  "
            f"{_num(point.get('mean_score')):>8}  "
            f"{point.get('acted', '?'):>5}  "
            f"{point.get('suppressed', '?'):>8}  "
            f"{point.get('recoded', '?'):>6}  "
            f"{point.get('kept', '?'):>4}"
        )
    return "\n".join(lines)


def render_why(
    ledger: AuditLedger,
    cell: str,
    fmt: str = "text",
    published: bool = False,
    **why_kwargs: Any,
) -> str:
    """One cell's explanation; ``published`` asks why_not instead."""
    explain = ledger.why_not if published else ledger.why
    text = explain(cell, **why_kwargs)
    if fmt == "json":
        key_records = _records_for_cell(ledger, cell)
        return json.dumps(
            {"cell": str(cell), "explanation": text,
             "records": key_records},
            indent=2, sort_keys=True,
        )
    return text


def _records_for_cell(ledger: AuditLedger, cell: str) -> List[Dict]:
    from .ledger import CellKey

    key = CellKey.parse(cell)
    return [record.to_dict() for record in ledger.records_for(key)]


def _num(value: Any) -> str:
    if isinstance(value, (int, float)):
        return f"{value:.4g}"
    return "?" if value is None else str(value)
