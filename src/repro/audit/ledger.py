"""The confidentiality audit ledger.

The anonymization cycle writes its per-cell decisions, per-iteration
risk gauges and end-of-run outcome into the schema-versioned event
stream (:mod:`repro.telemetry.events`).  This module folds that stream
— live, as an :meth:`~repro.telemetry.events.EventLog.add_observer`
callback, or offline from a written JSONL file — into an
:class:`AuditLedger` that can answer the two questions the paper's
explainability desideratum promises an auditor:

* :meth:`AuditLedger.why` — *why is this cell suppressed/recoded?*
  Renders the decision's triggering risk measure, its threshold
  comparison, the iteration, the quasi-identifier evidence captured at
  decision time, and (when a chase :class:`ProvenanceLog` is supplied)
  the bounded rule-derivation chain that made the cell risky.
* :meth:`AuditLedger.why_not` — *why was this cell published?*
  Either an explicit ``keep`` decision (the tuple was risky but an
  earlier step in the same pass fixed its group) or the final report's
  word that it never crossed the threshold.

Because live folding and file replay consume byte-identical envelopes,
``AuditLedger.replay(path).summary() == live_ledger.summary()`` holds
exactly — the integrity check the CI audit smoke asserts.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Tuple

from ..telemetry.events import iter_session_events

#: Decision kinds the ledger records (mirrors
#: :data:`repro.telemetry.events.AUDIT_ACTIONS`).
ACTIONS = ("suppress", "recode", "keep")


class CellKey:
    """Identity of one microdata cell: ``(db, row, attribute)``.

    ``attribute`` is ``None`` for row-level records (``keep`` decisions
    protect the whole tuple, not one cell).  Parsed from the console
    syntax ``[db:]row[:attribute]`` by :meth:`parse`.
    """

    __slots__ = ("db", "row", "attribute")

    def __init__(self, db: Optional[str], row: int,
                 attribute: Optional[str]):
        self.db = db
        self.row = int(row)
        self.attribute = attribute

    @classmethod
    def parse(cls, text: str) -> "CellKey":
        """Parse ``row``, ``row:attribute`` or ``db:row:attribute``.

        The row is the single integer component; everything before it
        is the db name, everything after it the attribute.
        """
        parts = str(text).split(":")
        for position, part in enumerate(parts):
            try:
                row = int(part)
            except ValueError:
                continue
            db = ":".join(parts[:position]) or None
            attribute = ":".join(parts[position + 1:]) or None
            return cls(db, row, attribute)
        raise ValueError(
            f"cell {text!r}: expected [db:]row[:attribute] with an "
            "integer row"
        )

    def matches(self, db: str, row: int, attribute: Optional[str]) -> bool:
        """Whether this (possibly partial) key selects the record."""
        if self.row != row:
            return False
        if self.db is not None and self.db != db:
            return False
        if self.attribute is not None and self.attribute != attribute:
            return False
        return True

    def __str__(self):
        parts = [] if self.db is None else [self.db]
        parts.append(str(self.row))
        if self.attribute is not None:
            parts.append(self.attribute)
        return ":".join(parts)

    def __repr__(self):
        return f"CellKey({self})"


class DecisionRecord:
    """One folded decision event, everything needed to explain it."""

    __slots__ = ("seq", "ts", "action", "db", "row", "attribute",
                 "iteration", "method", "measure", "score", "threshold",
                 "detail", "old", "new", "reason", "qis", "qi_values",
                 "evidence")

    def __init__(self, event: Dict[str, Any]):
        payload = event.get("payload", {})
        self.seq = event.get("seq")
        self.ts = event.get("ts")
        self.action = str(payload.get("kind", "?"))
        self.db = str(payload.get("db", "?"))
        self.row = int(payload.get("row", -1))
        self.attribute = payload.get("attribute")
        self.iteration = payload.get("iteration")
        self.method = payload.get("method")
        self.measure = payload.get("measure")
        self.score = payload.get("score")
        self.threshold = payload.get("threshold")
        self.detail = payload.get("detail")
        self.old = payload.get("old")
        self.new = payload.get("new")
        self.reason = payload.get("reason")
        self.qis = list(payload.get("qis") or [])
        self.qi_values = list(payload.get("qi_values") or [])
        self.evidence = payload.get("evidence")

    @property
    def cell(self) -> str:
        key = f"{self.db}:{self.row}"
        return key if self.attribute is None else \
            f"{key}:{self.attribute}"

    def comparison(self) -> str:
        """The threshold comparison at decision time."""
        if self.score is None or self.threshold is None:
            return "(no score recorded)"
        op = ">" if self.score > self.threshold else "<="
        return f"{self.score:.6g} {op} T={self.threshold:g}"

    def headline(self) -> str:
        verb = {
            "suppress": "suppressed", "recode": "recoded",
            "keep": "kept",
        }.get(self.action, self.action)
        where = f" at iteration {self.iteration}" \
            if self.iteration is not None else ""
        by = f" by {self.method}" if self.method else ""
        return f"{verb}{where}{by}"

    def to_dict(self) -> Dict[str, Any]:
        return {slot: getattr(self, slot) for slot in self.__slots__}

    def __repr__(self):
        return f"DecisionRecord({self.cell} {self.headline()})"


class AuditLedger:
    """In-memory fold of the confidentiality decisions of a run.

    Feed it envelopes via :meth:`fold` (it is directly usable as an
    :meth:`EventLog.add_observer` callback), or build it from a written
    stream with :meth:`replay` / :meth:`from_events`.  Non-audit event
    types are counted but otherwise ignored, so the ledger can ride on
    the full unified stream (spans, heartbeats, chase derivations and
    all).
    """

    def __init__(self) -> None:
        self.records: List[DecisionRecord] = []
        self.iterations: List[Dict[str, Any]] = []
        self.outcome: Dict[str, Any] = {}
        self.outcomes: List[Dict[str, Any]] = []
        self.events_seen = 0
        self._by_cell: Dict[Tuple[str, int, Optional[str]],
                            List[DecisionRecord]] = {}
        self._risk_rules: Dict[int, List[str]] = {}

    # -- folding ----------------------------------------------------------

    def fold(self, event: Dict[str, Any]) -> None:
        """Fold one envelope; the live-observer and replay entry point."""
        self.events_seen += 1
        event_type = event.get("type")
        payload = event.get("payload", {})
        if event_type == "decision":
            kind = payload.get("kind")
            if kind in ACTIONS:
                record = DecisionRecord(event)
                self.records.append(record)
                key = (record.db, record.row, record.attribute)
                self._by_cell.setdefault(key, []).append(record)
            elif kind == "derive":
                self._fold_derive(payload)
        elif event_type == "cycle_iteration":
            self.iterations.append(dict(payload))
        elif event_type == "cycle_summary":
            self.outcome = dict(payload)
            self.outcomes.append(dict(payload))

    def _fold_derive(self, payload: Dict[str, Any]) -> None:
        """Best-effort declarative grounding: when the same stream
        carries chase derivations of ``riskOutput(I, R)`` facts (the
        paper's Algorithms 3-5 run through the engine), remember which
        rule derived each row's risk so explanations can name it even
        after replay."""
        rule = payload.get("rule")
        for rendered in payload.get("derived") or []:
            text = str(rendered)
            if not text.startswith("riskOutput("):
                continue
            inner = text[len("riskOutput("):].split(",", 1)[0]
            try:
                row = int(inner.strip().strip('"'))
            except ValueError:
                continue
            chain = self._risk_rules.setdefault(row, [])
            if rule is not None and rule not in chain:
                chain.append(str(rule))

    __call__ = fold  # an AuditLedger is itself an EventLog observer

    @classmethod
    def from_events(cls, events: Iterable[Dict[str, Any]]) -> "AuditLedger":
        ledger = cls()
        for event in events:
            ledger.fold(event)
        return ledger

    @classmethod
    def replay(cls, path: str,
               strict_sequence: bool = True) -> "AuditLedger":
        """Reconstruct the ledger from a written event stream, with the
        same gap-free-sequence contract as :func:`telemetry.replay`."""
        return cls.from_events(
            iter_session_events(path, strict_sequence=strict_sequence)
        )

    def attach(self, log) -> "AuditLedger":
        """Subscribe to a live :class:`EventLog`; every event emitted
        from now on is folded as it happens."""
        log.add_observer(self.fold)
        return self

    # -- lookups ----------------------------------------------------------

    def records_for(self, cell: CellKey) -> List[DecisionRecord]:
        """All decisions matching the (possibly partial) cell key, in
        stream order."""
        return [
            record for record in self.records
            if cell.matches(record.db, record.row, record.attribute)
        ]

    def current(self, cell: CellKey) -> Optional[DecisionRecord]:
        """The decision that governs the cell's published state — the
        last action wins (a suppress-then-recode sequence ends recoded)."""
        matching = self.records_for(cell)
        return matching[-1] if matching else None

    def cells(self) -> List[Tuple[str, Optional[DecisionRecord]]]:
        """Every touched cell with its governing record, sorted."""
        out = []
        for (db, row, attribute), history in sorted(
            self._by_cell.items(),
            key=lambda kv: (kv[0][0], kv[0][1], kv[0][2] or ""),
        ):
            cell = f"{db}:{row}" + (
                f":{attribute}" if attribute is not None else ""
            )
            out.append((cell, history[-1]))
        return out

    def risk_rule_chain(self, row: int) -> List[str]:
        """Rule labels that derived the row's declarative risk fact(s)
        in this stream (empty when risk was scored natively)."""
        return list(self._risk_rules.get(row, []))

    # -- views ------------------------------------------------------------

    def summary(self) -> Dict[str, Any]:
        """A JSON-safe summary; live fold and replay agree exactly."""
        by_action = {action: 0 for action in ACTIONS}
        by_measure: Dict[str, int] = {}
        max_iteration = 0
        for record in self.records:
            by_action[record.action] = by_action.get(record.action, 0) + 1
            if record.measure is not None:
                measure = str(record.measure)
                by_measure[measure] = by_measure.get(measure, 0) + 1
            if isinstance(record.iteration, int):
                max_iteration = max(max_iteration, record.iteration)
        for point in self.iterations:
            iteration = point.get("iteration")
            if isinstance(iteration, int):
                max_iteration = max(max_iteration, iteration)
        return {
            "decisions": len(self.records),
            "by_action": by_action,
            "by_measure": by_measure,
            "cells": len(self._by_cell),
            "iterations": max_iteration,
            "iteration_points": len(self.iterations),
            "cycles": len(self.outcomes),
            "outcome": dict(self.outcome),
            "risk_grounded_rows": len(self._risk_rules),
        }

    def timeline(self) -> List[Dict[str, Any]]:
        """The per-iteration risk/utility points, in stream order."""
        return [dict(point) for point in self.iterations]

    # -- explanations -----------------------------------------------------

    def why(
        self,
        cell,
        provenance=None,
        risk_predicate: str = "riskOutput",
        max_depth: int = 4,
    ) -> str:
        """The derivation story of a cell's anonymization decision.

        ``cell`` is a :class:`CellKey` or the console syntax
        ``[db:]row[:attribute]``.  ``provenance`` optionally supplies a
        chase :class:`~repro.vadalog.explain.ProvenanceLog` whose
        ``risk_predicate`` facts ground the row's risk declaratively;
        the rendered chain is bounded by ``max_depth`` either way.
        """
        key = cell if isinstance(cell, CellKey) else CellKey.parse(cell)
        history = self.records_for(key)
        acted = [r for r in history if r.action in ("suppress", "recode")]
        if not acted:
            return self.why_not(key, provenance=provenance,
                                risk_predicate=risk_predicate,
                                max_depth=max_depth)
        record = acted[-1]
        lines = [f"cell {record.cell} — {record.headline()}"]
        lines.append(
            f"  trigger: {record.measure or '?'} risk "
            f"{record.comparison()}"
        )
        if record.detail:
            lines.append(f"  measure evidence: {record.detail}")
        if record.qis:
            lines.append(
                "  quasi-identifiers: " + "×".join(record.qis)
            )
        if record.action in ("suppress", "recode"):
            lines.append(
                f"  value: {record.old!r} -> {record.new!r}"
            )
        if len(history) > 1:
            lines.append("  history (last action wins):")
            for past in history:
                lines.append(
                    f"    iteration {past.iteration}: {past.action} "
                    f"{past.old!r} -> {past.new!r}"
                    if past.action != "keep"
                    else f"    iteration {past.iteration}: keep "
                         f"({past.evidence or 'group safe on recheck'})"
                )
        lines.extend(
            self._derivation_lines(record, provenance, risk_predicate,
                                   max_depth)
        )
        return "\n".join(lines)

    def why_not(
        self,
        cell,
        provenance=None,
        risk_predicate: str = "riskOutput",
        max_depth: int = 4,
    ) -> str:
        """Why a cell was *published* (not suppressed or recoded)."""
        key = cell if isinstance(cell, CellKey) else CellKey.parse(cell)
        history = self.records_for(key)
        kept = [r for r in history if r.action == "keep"]
        if kept:
            record = kept[-1]
            lines = [f"cell {key} — published ({record.headline()})"]
            lines.append(
                f"  was risky when iteration {record.iteration} "
                f"started: {record.measure or '?'} risk "
                f"{record.comparison()}"
            )
            if record.evidence:
                lines.append(f"  but {record.evidence}")
            if record.qis:
                lines.append(
                    "  quasi-identifiers: " + "×".join(record.qis)
                )
            lines.extend(
                self._derivation_lines(record, provenance,
                                       risk_predicate, max_depth)
            )
            return "\n".join(lines)
        if history:
            # Only suppress/recode records exist for this key — for a
            # row-level query that means the row was acted on.
            return self.why(key, provenance=provenance,
                            risk_predicate=risk_predicate,
                            max_depth=max_depth)
        lines = [f"cell {key} — published (no decision recorded)"]
        outcome = self.outcome
        if outcome:
            measure = outcome.get("measure", "?")
            threshold = outcome.get("threshold")
            final_max = outcome.get("final_max_score")
            comparison = ""
            if final_max is not None and threshold is not None:
                comparison = (
                    f" (final max {measure} risk across the dataset: "
                    f"{final_max:.6g} vs T={threshold:g})"
                )
            lines.append(
                f"  never exceeded the {measure} threshold in "
                f"{outcome.get('iterations', '?')} iteration(s)"
                + comparison
            )
        else:
            lines.append(
                "  no cycle outcome in this ledger — either the cell "
                "was never assessed or the stream predates the cycle"
            )
        return "\n".join(lines)

    def _derivation_lines(
        self,
        record: DecisionRecord,
        provenance,
        risk_predicate: str,
        max_depth: int,
    ) -> List[str]:
        """The bounded provenance chain under a decision record.

        Always renders the measure-level derivation captured in the
        event itself; when the stream carried chase derivations (or a
        live :class:`ProvenanceLog` is supplied) the declarative rule
        chain is appended — ``risky via rules kanon-1→kanon-2``.
        """
        lines = ["  derivation:"]
        risky = (
            record.score is not None and record.threshold is not None
            and record.score > record.threshold
        )
        lines.append(
            f"    risky(row {record.row}) <- {record.measure or '?'}"
            + (f" [{record.detail}]" if record.detail else "")
            if risky else
            f"    safe(row {record.row}) <- {record.measure or '?'}"
            + (f" [{record.detail}]" if record.detail else "")
        )
        if record.qis and record.qi_values:
            pairs = ", ".join(
                f"{qi}={value!r}"
                for qi, value in zip(record.qis, record.qi_values)
            )
            lines.append(f"    group({pairs}) <- qi values at decision "
                         "time")
        chain = self.risk_rule_chain(record.row)
        if provenance is not None:
            for fact in provenance.find(risk_predicate,
                                        first_value=record.row):
                for label in reversed(
                    provenance.rule_chain(fact, max_depth=max_depth)
                ):
                    if label not in chain:
                        chain.append(label)
        if chain:
            lines.append(
                "    risky via rules " + "→".join(chain[:max_depth])
            )
        if provenance is not None:
            facts = provenance.find(risk_predicate,
                                    first_value=record.row)
            for fact in facts[:1]:
                tree = provenance.explain(fact, max_depth=max_depth)
                for line in tree.render().splitlines():
                    lines.append("    " + line)
        return lines

    def __len__(self):
        return len(self.records)

    def __repr__(self):
        return (
            f"AuditLedger({len(self.records)} decision(s) over "
            f"{len(self._by_cell)} cell(s), "
            f"{len(self.iterations)} iteration point(s))"
        )
