"""repro.audit — the confidentiality audit ledger.

Folds the unified telemetry event stream into per-cell decision
records, per-iteration risk/utility time series and end-of-run
outcomes, and renders the "why was this cell suppressed / published?"
explanations the paper's explainability desideratum promises.  See
``docs/audit.md`` and the ``python -m repro audit`` console.
"""

from .console import render_summary, render_timeline, render_why
from .ledger import ACTIONS, AuditLedger, CellKey, DecisionRecord

__all__ = [
    "ACTIONS",
    "AuditLedger",
    "CellKey",
    "DecisionRecord",
    "render_summary",
    "render_timeline",
    "render_why",
]
