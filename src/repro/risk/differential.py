"""Differential-privacy-inspired risk measure (the paper's future
work, Section 6).

The paper notes that differential privacy offers "an interesting
concept [that] may be adopted in our approach so as to develop a new
family of risk measures, based on the idea that an individual's privacy
may be violated even knowing the absence of the individual from the
microdata".

This extension implements that family member: instead of thresholding
the group frequency, the risk decays exponentially with the number of
*other* tuples indistinguishable from the target —

    ρ_ε(t) = exp(−ε · (f_t − 1))

where f_t is the =⊥-group frequency.  A sample-unique tuple scores 1
regardless of ε (its presence/absence is fully observable); each
additional indistinguishable tuple multiplies the adversary's
uncertainty by e^−ε, mirroring the e^ε indistinguishability bound of
ε-differential privacy.  Unlike k-anonymity's step function, the score
is smooth, so thresholds translate directly into minimum group sizes:
ρ ≤ T  ⇔  f ≥ 1 + ln(1/T)/ε.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

from ..errors import ReproError
from ..model.microdata import MicrodataDB
from ..model.nulls import MAYBE_MATCH, NullSemantics
from .base import RiskMeasure, RiskReport, register_measure


def minimum_safe_frequency(epsilon: float, threshold: float) -> int:
    """The smallest group size with ρ_ε ≤ threshold."""
    if threshold >= 1.0:
        return 1
    if threshold <= 0.0:
        raise ReproError("threshold must be positive for a finite bound")
    return 1 + math.ceil(math.log(1.0 / threshold) / epsilon)


@register_measure
class DifferentialRisk(RiskMeasure):
    """Smooth, DP-style presence-indistinguishability risk."""

    name = "differential"

    def __init__(self, epsilon: float = 0.5):
        if epsilon <= 0:
            raise ReproError(f"epsilon must be positive, got {epsilon}")
        self.epsilon = float(epsilon)

    def assess(
        self,
        db: MicrodataDB,
        semantics: NullSemantics = MAYBE_MATCH,
        attributes: Optional[Sequence[str]] = None,
    ) -> RiskReport:
        attributes = self._resolve_attributes(db, attributes)
        counts = semantics.match_counts(db, attributes)
        scores = [
            math.exp(-self.epsilon * max(0, count - 1))
            for count in counts
        ]
        details = [
            f"frequency {count}, epsilon={self.epsilon}"
            for count in counts
        ]
        return RiskReport(
            self.name,
            scores,
            attributes,
            details=details,
            parameters={
                "epsilon": self.epsilon,
                "semantics": semantics.name,
            },
        )

    def safe_from_group(self, count, weight_sum, threshold):
        """Group frequency fully determines the score."""
        return math.exp(-self.epsilon * max(0, count - 1)) <= threshold
