"""Risk-measure interface and plug-in registry.

``#risk`` in the anonymization cycle (Algorithm 2) is *polymorphic*:
"Vada-SA features a plug-in mechanism to opt for specific
implementations at runtime".  :class:`RiskMeasure` is that plug-in
contract and :data:`RISK_REGISTRY` the runtime switch; every measure is
registered under the name used in the paper.

A measure returns a :class:`RiskReport` with one score per row in
``[0, 1]``; thresholded measures (k-anonymity, SUDA) return 0/1 scores,
so any threshold ``0 < T < 1`` (the paper uses ``T = 0.5``) separates
safe from risky.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Type

from ..errors import ReproError
from ..model.microdata import MicrodataDB
from ..model.nulls import MAYBE_MATCH, NullSemantics


class RiskVerdict:
    """One row's threshold comparison, as a first-class value.

    Downstream consumers (the anonymization cycle, the audit ledger,
    the exchange report) used to re-derive "is this risky and why" from
    a bare float; the verdict carries the whole comparison — measure
    name, score, threshold, the boolean outcome and the measure's own
    evidence string — so a decision can be recorded and explained long
    after the report is gone.
    """

    __slots__ = ("measure", "row", "score", "threshold", "risky",
                 "detail", "parameters")

    def __init__(
        self,
        measure: str,
        row: int,
        score: float,
        threshold: float,
        detail: Optional[str] = None,
        parameters: Optional[Dict] = None,
    ):
        self.measure = measure
        self.row = row
        self.score = score
        self.threshold = threshold
        self.risky = score > threshold
        self.detail = detail
        self.parameters = dict(parameters or {})

    def comparison(self) -> str:
        """The threshold comparison as text: ``0.31 > T=0.2``."""
        op = ">" if self.risky else "<="
        return f"{self.score:.6g} {op} T={self.threshold:g}"

    def explain(self) -> str:
        base = (
            f"row {self.row}: {self.measure} risk {self.comparison()}"
        )
        if self.detail:
            base += f" — {self.detail}"
        return base

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe form, the shape decision events embed."""
        return {
            "measure": self.measure,
            "row": self.row,
            "score": self.score,
            "threshold": self.threshold,
            "risky": self.risky,
            "detail": self.detail,
            "parameters": {
                str(k): v for k, v in self.parameters.items()
            },
        }

    def __repr__(self):
        return (
            f"RiskVerdict({self.measure}, row={self.row}, "
            f"{self.comparison()})"
        )


class RiskReport:
    """Per-row risk scores plus the context needed to explain them."""

    def __init__(
        self,
        measure: str,
        scores: Sequence[float],
        attributes: Sequence[str],
        details: Optional[Sequence[str]] = None,
        parameters: Optional[Dict] = None,
    ):
        self.measure = measure
        self.scores: List[float] = list(scores)
        self.attributes = list(attributes)
        self.details = list(details) if details is not None else None
        self.parameters = dict(parameters or {})

    def risky_indices(self, threshold: float) -> List[int]:
        """Rows whose score exceeds the threshold T of Algorithm 2."""
        return [
            index
            for index, score in enumerate(self.scores)
            if score > threshold
        ]

    def max_score(self) -> float:
        return max(self.scores) if self.scores else 0.0

    def mean_score(self) -> float:
        return (
            sum(self.scores) / len(self.scores) if self.scores else 0.0
        )

    def verdict(self, index: int, threshold: float) -> RiskVerdict:
        """The row's threshold comparison as a :class:`RiskVerdict`."""
        return RiskVerdict(
            self.measure,
            index,
            self.scores[index],
            threshold,
            detail=(
                self.details[index] if self.details is not None else None
            ),
            parameters=self.parameters,
        )

    def verdicts(self, threshold: float) -> List[RiskVerdict]:
        """Every row's verdict against the given threshold."""
        return [
            self.verdict(index, threshold)
            for index in range(len(self.scores))
        ]

    def explain(self, index: int) -> str:
        """Human-readable motivation for one row's score."""
        base = (
            f"row {index}: {self.measure} risk = {self.scores[index]:.6g} "
            f"over QIs {self.attributes}"
        )
        if self.details is not None and self.details[index]:
            base += f" — {self.details[index]}"
        return base

    def __len__(self):
        return len(self.scores)

    def __repr__(self):
        return (
            f"RiskReport({self.measure}, {len(self.scores)} rows, "
            f"max={self.max_score():.4g})"
        )


class RiskMeasure:
    """Base class for statistical-disclosure-risk estimators."""

    #: Registry key; subclasses override.
    name = "abstract"

    def assess(
        self,
        db: MicrodataDB,
        semantics: NullSemantics = MAYBE_MATCH,
        attributes: Optional[Sequence[str]] = None,
    ) -> RiskReport:
        """Score every row of the dataset.

        ``attributes`` restricts evaluation to a subset q̂ of the
        quasi-identifiers (Section 2.2: "the ones we suppose the
        attacker is aware of"); None means all quasi-identifiers.
        """
        raise NotImplementedError

    def safe_from_group(
        self, count: int, weight_sum: float, threshold: float
    ) -> Optional[bool]:
        """Decide safety of a tuple from its current =⊥-group count and
        weight sum alone, if the measure supports it.

        Returns True/False when decidable, None when the measure needs
        more than group statistics (e.g. SUDA's MSUs) — in that case
        the anonymization cycle skips its within-iteration recheck.
        """
        return None

    def _resolve_attributes(
        self, db: MicrodataDB, attributes: Optional[Sequence[str]]
    ) -> List[str]:
        if attributes is None:
            return db.quasi_identifiers
        unknown = [a for a in attributes if a not in db.schema.categories]
        if unknown:
            raise ReproError(
                f"unknown risk attributes {unknown} for {db.name!r}"
            )
        return list(attributes)


#: name -> measure class
RISK_REGISTRY: Dict[str, Type[RiskMeasure]] = {}


def register_measure(cls: Type[RiskMeasure]) -> Type[RiskMeasure]:
    """Class decorator adding a measure to the plug-in registry."""
    if cls.name in RISK_REGISTRY:
        raise ReproError(f"risk measure {cls.name!r} already registered")
    RISK_REGISTRY[cls.name] = cls
    return cls


def measure_by_name(name: str, **parameters) -> RiskMeasure:
    """Instantiate a registered measure, passing constructor params."""
    try:
        cls = RISK_REGISTRY[name]
    except KeyError:
        raise ReproError(
            f"unknown risk measure {name!r}; registered: "
            f"{sorted(RISK_REGISTRY)}"
        ) from None
    return cls(**parameters)
