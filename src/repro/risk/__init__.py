"""repro.risk — statistical disclosure risk measures (Section 4.2).

All measures register themselves in :data:`RISK_REGISTRY`, the runtime
plug-in switch behind the polymorphic ``#risk`` atom of Algorithm 2.
"""

from .base import (
    RISK_REGISTRY,
    RiskMeasure,
    RiskReport,
    RiskVerdict,
    measure_by_name,
    register_measure,
)
from .cluster import combined_cluster_risk, propagate_over_clusters
from .differential import DifferentialRisk, minimum_safe_frequency
from .file_level import FileRisk, file_risk, release_gate
from .individual import IndividualRisk, posterior_mean_inverse_frequency
from .k_anonymity import KAnonymityRisk
from .l_diversity import LDiversityRisk, sensitive_diversity
from .reidentification import ReidentificationRisk
from .suda import SudaRisk, find_minimal_sample_uniques, suda_dis_scores
from .t_closeness import TClosenessRisk, group_closeness

__all__ = [
    "RISK_REGISTRY",
    "DifferentialRisk",
    "FileRisk",
    "file_risk",
    "release_gate",
    "IndividualRisk",
    "minimum_safe_frequency",
    "KAnonymityRisk",
    "LDiversityRisk",
    "sensitive_diversity",
    "ReidentificationRisk",
    "RiskMeasure",
    "RiskReport",
    "RiskVerdict",
    "SudaRisk",
    "TClosenessRisk",
    "group_closeness",
    "combined_cluster_risk",
    "find_minimal_sample_uniques",
    "measure_by_name",
    "posterior_mean_inverse_frequency",
    "propagate_over_clusters",
    "register_measure",
    "suda_dis_scores",
]
