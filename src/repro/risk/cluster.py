"""Cluster (business-knowledge) risk combination — Section 4.4.

Statistical disclosure risk propagates along linked entities: if
re-identifying one company of a control group makes the others easy to
re-identify, every member of the cluster carries the probability that
*at least one* member is re-identified:

    R_cluster = 1 − Π_c (1 − ρ_c)

This module combines a base :class:`~repro.risk.base.RiskReport` with a
clustering of rows (from :mod:`repro.business.ownership` or any other
link source) into the enhanced per-row risk used by Algorithm 9.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set

from ..errors import ReproError
from .base import RiskReport


def combined_cluster_risk(risks: Iterable[float]) -> float:
    """1 − Π(1 − ρ) over the member risks, clipped to [0, 1]."""
    survival = 1.0
    for risk in risks:
        risk = min(1.0, max(0.0, risk))
        survival *= 1.0 - risk
    return 1.0 - survival


def propagate_over_clusters(
    report: RiskReport,
    clusters: Sequence[Set[int]],
) -> RiskReport:
    """Lift a per-row report to cluster-level risk.

    ``clusters`` is a list of disjoint row-index sets; rows absent from
    every cluster keep their own risk (singleton semantics, since
    rel(X, X) holds).
    """
    n = len(report.scores)
    assigned: Dict[int, int] = {}
    for cluster_id, members in enumerate(clusters):
        for index in members:
            if index < 0 or index >= n:
                raise ReproError(
                    f"cluster member {index} outside dataset of size {n}"
                )
            if index in assigned:
                raise ReproError(
                    f"row {index} belongs to two clusters "
                    f"({assigned[index]} and {cluster_id})"
                )
            assigned[index] = cluster_id

    scores = list(report.scores)
    details: List[str] = (
        list(report.details)
        if report.details is not None
        else [""] * n
    )
    for cluster_id, members in enumerate(clusters):
        if len(members) < 2:
            continue
        combined = combined_cluster_risk(
            report.scores[index] for index in members
        )
        for index in members:
            scores[index] = combined
            details[index] = (
                f"cluster of {len(members)} linked entities: combined "
                f"risk {combined:.6g} (own {report.scores[index]:.6g})"
            )
    parameters = dict(report.parameters)
    parameters["clusters"] = len(clusters)
    return RiskReport(
        f"{report.measure}+clusters",
        scores,
        report.attributes,
        details=details,
        parameters=parameters,
    )
