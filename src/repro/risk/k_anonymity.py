"""k-anonymity risk (Algorithm 4).

A tuple is *dangerous* when fewer than ``k`` tuples of the microdata DB
share its quasi-identifier combination under the chosen null semantics
(``R = case F < k then 1 else 0``).  With maybe-match semantics a
suppressed cell lets the tuple join every compatible group, which is
how a single labelled null lifted tuple 1 of Figure 5 from frequency 1
to frequency 5.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..errors import ReproError
from ..model.microdata import MicrodataDB
from ..model.nulls import MAYBE_MATCH, NullSemantics
from .base import RiskMeasure, RiskReport, register_measure


@register_measure
class KAnonymityRisk(RiskMeasure):
    """Thresholded frequency risk: 1 when |group| < k, else 0."""

    name = "k-anonymity"

    def __init__(self, k: int = 2):
        if k < 1:
            raise ReproError(f"k must be positive, got {k}")
        self.k = int(k)

    def assess(
        self,
        db: MicrodataDB,
        semantics: NullSemantics = MAYBE_MATCH,
        attributes: Optional[Sequence[str]] = None,
    ) -> RiskReport:
        attributes = self._resolve_attributes(db, attributes)
        counts = semantics.match_counts(db, attributes)
        scores = [1.0 if count < self.k else 0.0 for count in counts]
        details = [
            f"frequency {count} vs k={self.k}"
            + (" (sample unique)" if count == 1 else "")
            for count in counts
        ]
        return RiskReport(
            self.name,
            scores,
            attributes,
            details=details,
            parameters={"k": self.k, "semantics": semantics.name},
        )

    def safe_from_group(self, count, weight_sum, threshold):
        """A tuple is safe exactly when its group reaches k members."""
        return count >= self.k

    def frequencies(
        self,
        db: MicrodataDB,
        semantics: NullSemantics = MAYBE_MATCH,
        attributes: Optional[Sequence[str]] = None,
    ):
        """The raw per-row frequencies (the F column of Figure 5)."""
        attributes = self._resolve_attributes(db, attributes)
        return semantics.match_counts(db, attributes)
