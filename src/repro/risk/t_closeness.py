"""t-closeness risk (extension: sensitive-distribution protection).

Completes the classic privacy-model trio (k-anonymity, l-diversity,
t-closeness — all supported by the ARX comparator the paper cites).
l-diversity counts *distinct* sensitive values; t-closeness bounds how
much a group's sensitive-value *distribution* may deviate from the
file-wide one: a group whose distribution is skewed toward one value
leaks probabilistic information even when l distinct values appear.

A tuple is flagged (risk 1) when the total-variation distance between
its =⊥-group's sensitive distribution and the global distribution
exceeds ``t``.  (The original paper uses Earth Mover's Distance with a
ground metric; for the categorical sensitive attributes of survey
microdata TV — EMD under the discrete metric — is the standard
instantiation.)
"""

from __future__ import annotations

from collections import Counter, defaultdict
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..anonymize.utility import total_variation
from ..errors import ReproError
from ..model.microdata import MicrodataDB, is_suppressed
from ..model.nulls import MAYBE_MATCH, NullSemantics, StandardSemantics
from .base import RiskMeasure, RiskReport, register_measure


def _distribution(counter: Counter) -> Dict[Any, float]:
    total = sum(counter.values())
    if total == 0:
        return {}
    return {value: count / total for value, count in counter.items()}


def group_closeness(
    db: MicrodataDB,
    sensitive: str,
    attributes: Sequence[str],
    semantics: NullSemantics = MAYBE_MATCH,
) -> List[float]:
    """Per row: TV distance between the sensitive distribution of its
    =⊥-group and the global sensitive distribution."""
    n = len(db)
    global_distribution = _distribution(
        Counter(db.rows[index][sensitive] for index in range(n))
    )

    if isinstance(semantics, StandardSemantics):
        groups: Dict[Tuple, Counter] = defaultdict(Counter)
        keys = []
        for index in range(n):
            key = tuple(db.rows[index][a] for a in attributes)
            keys.append(key)
            groups[key][db.rows[index][sensitive]] += 1
        cache = {
            key: total_variation(_distribution(counter),
                                 global_distribution)
            for key, counter in groups.items()
        }
        return [cache[keys[index]] for index in range(n)]

    null_rows = [
        index
        for index in range(n)
        if any(is_suppressed(db.rows[index][a]) for a in attributes)
    ]
    exact_groups: Dict[Tuple, Counter] = defaultdict(Counter)
    null_set = set(null_rows)
    for index in range(n):
        if index in null_set:
            continue
        key = tuple(db.rows[index][a] for a in attributes)
        exact_groups[key][db.rows[index][sensitive]] += 1

    distances = []
    for index in range(n):
        row = db.rows[index]
        combination = [(a, row[a]) for a in attributes]
        if any(is_suppressed(value) for _, value in combination):
            counter: Counter = Counter()
            for other in range(n):
                if semantics.matches_combination(
                    db.rows[other], combination
                ):
                    counter[db.rows[other][sensitive]] += 1
        else:
            key = tuple(value for _, value in combination)
            counter = Counter(exact_groups.get(key, Counter()))
            for other in null_rows:
                if semantics.matches_combination(
                    db.rows[other], combination
                ):
                    counter[db.rows[other][sensitive]] += 1
        distances.append(
            total_variation(_distribution(counter), global_distribution)
        )
    return distances


@register_measure
class TClosenessRisk(RiskMeasure):
    """Risk 1 when the group's sensitive distribution is farther than
    ``t`` (in total variation) from the file-wide distribution."""

    name = "t-closeness"

    def __init__(self, sensitive: str, t: float = 0.3):
        if not 0 < t <= 1:
            raise ReproError(f"t must be in (0, 1], got {t}")
        if not sensitive:
            raise ReproError("a sensitive attribute is required")
        self.sensitive = sensitive
        self.t = float(t)

    def assess(
        self,
        db: MicrodataDB,
        semantics: NullSemantics = MAYBE_MATCH,
        attributes: Optional[Sequence[str]] = None,
    ) -> RiskReport:
        attributes = self._resolve_attributes(db, attributes)
        if self.sensitive not in db.schema.categories:
            raise ReproError(
                f"sensitive attribute {self.sensitive!r} not in schema"
            )
        if self.sensitive in attributes:
            raise ReproError(
                "the sensitive attribute cannot be a quasi-identifier "
                "under evaluation"
            )
        distances = group_closeness(
            db, self.sensitive, attributes, semantics
        )
        scores = [
            1.0 if distance > self.t else 0.0 for distance in distances
        ]
        details = [
            f"group-vs-global TV {distance:.4f} vs t={self.t}"
            for distance in distances
        ]
        return RiskReport(
            self.name,
            scores,
            attributes,
            details=details,
            parameters={
                "t": self.t,
                "sensitive": self.sensitive,
                "semantics": semantics.name,
            },
        )
