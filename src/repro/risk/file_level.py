"""File-level (global) risk indicators.

SDC practice complements per-tuple risk with *file-level* indicators
before release (cf. the sdcMicro global risk measures the paper builds
its yardstick on):

* **expected re-identifications** — Σ_t ρ_t: how many respondents an
  attacker matching every tuple would identify in expectation;
* **global risk** — the same, normalized by the file size;
* **at-risk share** — fraction of tuples above the threshold T.

These are thin aggregations over a :class:`~repro.risk.base.RiskReport`
plus a convenience gate used by exchange pipelines: a file ships only
when *both* the per-tuple threshold and the global budget hold.
"""

from __future__ import annotations

from typing import NamedTuple

from ..errors import ReproError
from .base import RiskReport


class FileRisk(NamedTuple):
    """Aggregated file-level indicators for one report."""

    expected_reidentifications: float
    global_risk: float
    at_risk_share: float
    tuples: int

    def __str__(self):
        return (
            f"expected re-identifications {self.expected_reidentifications:.2f} "
            f"over {self.tuples} tuples (global risk "
            f"{self.global_risk:.4f}, at-risk share "
            f"{self.at_risk_share:.2%})"
        )


def file_risk(report: RiskReport, threshold: float = 0.5) -> FileRisk:
    """Aggregate a per-tuple report into file-level indicators."""
    if not 0 <= threshold <= 1:
        raise ReproError(f"threshold must be in [0, 1], got {threshold}")
    total = len(report.scores)
    if total == 0:
        return FileRisk(0.0, 0.0, 0.0, 0)
    expected = float(sum(report.scores))
    at_risk = sum(1 for score in report.scores if score > threshold)
    return FileRisk(expected, expected / total, at_risk / total, total)


def release_gate(
    report: RiskReport,
    tuple_threshold: float = 0.5,
    global_budget: float = 1.0,
) -> bool:
    """True when the file may ship: no tuple above the per-tuple
    threshold **and** expected re-identifications within the budget."""
    aggregate = file_risk(report, tuple_threshold)
    if aggregate.at_risk_share > 0:
        return False
    return aggregate.expected_reidentifications <= global_budget
