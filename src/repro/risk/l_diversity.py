"""l-diversity risk (extension: sensitive-attribute protection).

k-anonymity bounds *re-identification*, but a homogeneous group leaks
its sensitive value even without identifying anyone (the classic
Machanavajjhala et al. critique, implemented by the ARX tool the paper
cites as a comparator).  A tuple is l-diverse-safe when its
=⊥-group over the quasi-identifiers contains at least ``l`` distinct
values of the designated *sensitive* attribute.

In the Vada-SA setting the sensitive attribute is one of the
non-identifying attributes (e.g. ``Growth6mos``: a firm's performance
is confidential even if the firm stays anonymous).  The measure is
registered like any other plug-in and runs in the anonymization cycle;
suppression enlarges groups, which can only add sensitive values, so
the cycle converges under maybe-match semantics like k-anonymity does.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from ..errors import ReproError
from ..model.microdata import MicrodataDB, is_suppressed
from ..model.nulls import MAYBE_MATCH, NullSemantics, StandardSemantics
from .base import RiskMeasure, RiskReport, register_measure


def sensitive_diversity(
    db: MicrodataDB,
    sensitive: str,
    attributes: Sequence[str],
    semantics: NullSemantics = MAYBE_MATCH,
) -> List[int]:
    """Per row: distinct sensitive values among its =⊥-matching rows."""
    n = len(db)
    if isinstance(semantics, StandardSemantics):
        groups: Dict[Tuple, Set[Any]] = defaultdict(set)
        keys = []
        for index in range(n):
            key = tuple(db.rows[index][a] for a in attributes)
            keys.append(key)
            groups[key].add(db.rows[index][sensitive])
        return [len(groups[keys[index]]) for index in range(n)]

    # Maybe-match: group membership is per-row; reuse the pattern-join
    # trick only for the common no-null case, scanning for null rows.
    null_rows = [
        index
        for index in range(n)
        if any(is_suppressed(db.rows[index][a]) for a in attributes)
    ]
    exact_values: Dict[Tuple, Set[Any]] = defaultdict(set)
    for index in range(n):
        if index in set(null_rows):
            continue
        key = tuple(db.rows[index][a] for a in attributes)
        exact_values[key].add(db.rows[index][sensitive])

    diversities = []
    for index in range(n):
        row = db.rows[index]
        combination = [(a, row[a]) for a in attributes]
        if any(is_suppressed(value) for _, value in combination):
            values = {
                db.rows[other][sensitive]
                for other in range(n)
                if semantics.matches_combination(
                    db.rows[other], combination
                )
            }
        else:
            key = tuple(value for _, value in combination)
            values = set(exact_values.get(key, set()))
            for other in null_rows:
                if semantics.matches_combination(
                    db.rows[other], combination
                ):
                    values.add(db.rows[other][sensitive])
        diversities.append(len(values))
    return diversities


@register_measure
class LDiversityRisk(RiskMeasure):
    """Risk 1 when the tuple's group has < l distinct sensitive
    values, 0 otherwise."""

    name = "l-diversity"

    def __init__(self, sensitive: str, l: int = 2):  # noqa: E741
        if l < 1:
            raise ReproError(f"l must be positive, got {l}")
        if not sensitive:
            raise ReproError("a sensitive attribute is required")
        self.sensitive = sensitive
        self.l = int(l)

    def assess(
        self,
        db: MicrodataDB,
        semantics: NullSemantics = MAYBE_MATCH,
        attributes: Optional[Sequence[str]] = None,
    ) -> RiskReport:
        attributes = self._resolve_attributes(db, attributes)
        if self.sensitive not in db.schema.categories:
            raise ReproError(
                f"sensitive attribute {self.sensitive!r} not in schema"
            )
        if self.sensitive in attributes:
            raise ReproError(
                "the sensitive attribute cannot be a quasi-identifier "
                "under evaluation"
            )
        diversities = sensitive_diversity(
            db, self.sensitive, attributes, semantics
        )
        scores = [
            1.0 if diversity < self.l else 0.0
            for diversity in diversities
        ]
        details = [
            f"{diversity} distinct {self.sensitive!r} value(s) in "
            f"group vs l={self.l}"
            for diversity in diversities
        ]
        return RiskReport(
            self.name,
            scores,
            attributes,
            details=details,
            parameters={
                "l": self.l,
                "sensitive": self.sensitive,
                "semantics": semantics.name,
            },
        )
