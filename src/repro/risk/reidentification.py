"""Re-identification-based risk (Section 2.2, Algorithm 3).

The sampling weight W_t estimates the number of identity-oracle
entities sharing the tuple's quasi-identifier combination, so the risk
of re-identifying tuple *t* is ρ_t = 1 / Σ W over the =⊥-group of its
quasi-identifiers.  For a combination that is sample-unique the group
is the tuple alone and ρ = 1/W_t — e.g. 1/30 ≈ 0.033 for tuple 15 of
Figure 1 and 1/300 ≈ 0.003 for tuple 7.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..model.microdata import MicrodataDB
from ..model.nulls import MAYBE_MATCH, NullSemantics
from .base import RiskMeasure, RiskReport, register_measure


@register_measure
class ReidentificationRisk(RiskMeasure):
    """ρ = 1 / λ(σ_q̂ M) with λ = Σ W (Equation 1 instantiated)."""

    name = "reidentification"

    def __init__(self, minimum_weight: float = 1e-9):
        #: Guard against zero/negative weights producing infinite risk.
        self.minimum_weight = minimum_weight

    def safe_from_group(self, count, weight_sum, threshold):
        """Safe when 1 / Σ W is within the threshold."""
        denominator = max(weight_sum, self.minimum_weight)
        return (1.0 / denominator) <= threshold

    def assess(
        self,
        db: MicrodataDB,
        semantics: NullSemantics = MAYBE_MATCH,
        attributes: Optional[Sequence[str]] = None,
    ) -> RiskReport:
        attributes = self._resolve_attributes(db, attributes)
        counts, weight_sums = semantics.match_aggregate(
            db, attributes, values=db.weights()
        )
        scores = []
        details = []
        for index in range(len(db)):
            denominator = max(weight_sums[index], self.minimum_weight)
            score = min(1.0, 1.0 / denominator)
            scores.append(score)
            details.append(
                f"group weight sum {weight_sums[index]:.6g} over "
                f"{counts[index]} matching tuple(s)"
            )
        return RiskReport(
            self.name,
            scores,
            attributes,
            details=details,
            parameters={"semantics": semantics.name},
        )
