"""SUDA — special uniques detection (Algorithm 6).

A *sample unique* is a set of (quasi-identifier, value) pairs matched
by exactly one tuple; a **minimal sample unique** (MSU) is a sample
unique with no sample-unique proper subset.  SUDA scores a tuple by the
size and number of its MSUs: very small MSUs mean very few attribute
values suffice to single the tuple out.

Per Rule 8 of Algorithm 6, the off-the-shelf risk is thresholded:
a tuple is dangerous (risk 1) when it has an MSU of size < k.

The search enumerates attribute subsets in ascending size, counting
projections over the whole dataset per subset (one dictionary pass), and
prunes supersets of already-found MSUs — the same preemptive pruning
the paper attributes to the Vadalog "greedy activation of Rule 7",
which is why Fig. 7f shows no combinatorial blow-up.  A SUDA2-style
DIS score is also exposed as an extension.
"""

from __future__ import annotations

import itertools
import math
from collections import Counter, defaultdict
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from ..errors import ReproError
from ..model.microdata import MicrodataDB, is_suppressed
from ..model.nulls import MAYBE_MATCH, NullSemantics, StandardSemantics
from .base import RiskMeasure, RiskReport, register_measure


def find_minimal_sample_uniques(
    db: MicrodataDB,
    attributes: Sequence[str],
    max_size: Optional[int] = None,
    semantics: NullSemantics = MAYBE_MATCH,
) -> Dict[int, List[FrozenSet[str]]]:
    """Per-row list of MSUs (as attribute-name frozensets).

    ``max_size`` bounds the subset size inspected (SUDA's usual cap);
    None inspects all sizes up to the number of attributes.
    """
    attributes = list(attributes)
    if max_size is None:
        max_size = len(attributes)
    msus: Dict[int, List[FrozenSet[str]]] = defaultdict(list)
    null_rows = _rows_with_nulls(db, attributes)

    for size in range(1, max_size + 1):
        for subset in itertools.combinations(attributes, size):
            subset_set = frozenset(subset)
            counter: Counter = Counter()
            keys: List[Optional[Tuple]] = []
            for index in range(len(db)):
                if index in null_rows:
                    keys.append(None)  # handled by slow path below
                    continue
                key = tuple(db.rows[index][a] for a in subset)
                keys.append(key)
                counter[key] += 1
            for index in range(len(db)):
                key = keys[index]
                if key is None:
                    unique = _is_unique_slow(
                        db, index, subset, semantics
                    )
                elif counter[key] != 1:
                    continue
                elif null_rows:
                    # Exact-unique, but a null row may still maybe-match.
                    unique = _is_unique_slow(db, index, subset, semantics)
                else:
                    unique = True
                if not unique:
                    continue
                if any(
                    existing < subset_set or existing == subset_set
                    for existing in msus[index]
                ):
                    continue  # superset of a known MSU: not minimal
                msus[index].append(subset_set)
    return dict(msus)


def _rows_with_nulls(db: MicrodataDB, attributes: Sequence[str]):
    return {
        index
        for index in range(len(db))
        if any(is_suppressed(db.rows[index][a]) for a in attributes)
    }


def _is_unique_slow(
    db: MicrodataDB,
    index: int,
    subset: Sequence[str],
    semantics: NullSemantics,
) -> bool:
    row = db.rows[index]
    combination = [(a, row[a]) for a in subset]
    matches = 0
    for other_index in range(len(db)):
        if semantics.matches_combination(db.rows[other_index], combination):
            matches += 1
            if matches > 1:
                return False
    return matches == 1


def suda_dis_scores(
    msus: Dict[int, List[FrozenSet[str]]],
    total_rows: int,
    attribute_count: int,
    dis_fraction: float = 0.1,
) -> List[float]:
    """SUDA2-style DIS scores (extension beyond Algorithm 6).

    Each MSU of size m over q attributes contributes (q − m)! — smaller
    MSUs weigh (factorially) more; scores are normalized over the file
    and scaled by the expected misclassification fraction.
    """
    raw = [0.0] * total_rows
    for index, sets in msus.items():
        raw[index] = float(
            sum(math.factorial(attribute_count - len(s)) for s in sets)
        )
    total = sum(raw)
    if total <= 0:
        return raw
    return [dis_fraction * value / total * total_rows for value in raw]


@register_measure
class SudaRisk(RiskMeasure):
    """Thresholded MSU-size risk: 1 when some MSU has size < k."""

    name = "suda"

    def __init__(self, k: int = 3, max_msu_size: Optional[int] = None):
        if k < 1:
            raise ReproError(f"SUDA threshold k must be positive, got {k}")
        self.k = int(k)
        self.max_msu_size = max_msu_size

    def assess(
        self,
        db: MicrodataDB,
        semantics: NullSemantics = MAYBE_MATCH,
        attributes: Optional[Sequence[str]] = None,
    ) -> RiskReport:
        attributes = self._resolve_attributes(db, attributes)
        max_size = self.max_msu_size
        if max_size is None:
            # Minimal uniques larger than k are never dangerous, so the
            # ascending search may stop at size k (the same preemption
            # that keeps Fig. 7f flat).
            max_size = min(len(attributes), self.k)
        msus = find_minimal_sample_uniques(
            db, attributes, max_size=max_size, semantics=semantics
        )
        scores = []
        details = []
        for index in range(len(db)):
            row_msus = msus.get(index, [])
            dangerous = any(len(s) < self.k for s in row_msus)
            scores.append(1.0 if dangerous else 0.0)
            if row_msus:
                sizes = sorted(len(s) for s in row_msus)
                details.append(
                    f"{len(row_msus)} MSU(s), sizes {sizes}, k={self.k}"
                )
            else:
                details.append(f"no MSU up to size {max_size}")
        return RiskReport(
            self.name,
            scores,
            attributes,
            details=details,
            parameters={
                "k": self.k,
                "max_msu_size": max_size,
                "semantics": semantics.name,
            },
        )

    def minimal_sample_uniques(
        self,
        db: MicrodataDB,
        semantics: NullSemantics = MAYBE_MATCH,
        attributes: Optional[Sequence[str]] = None,
        max_size: Optional[int] = None,
    ) -> Dict[int, List[FrozenSet[str]]]:
        """Expose the raw MSUs (used by tests and the DIS extension)."""
        attributes = self._resolve_attributes(db, attributes)
        return find_minimal_sample_uniques(
            db,
            attributes,
            max_size=max_size or len(attributes),
            semantics=semantics,
        )
