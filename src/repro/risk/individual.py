"""Individual risk (Algorithm 5, after Benedetti & Franconi).

The re-identification model conflates the sampling weight with the
population frequency F_k of the quasi-identifier combination.  The
individual-risk model instead treats F_k as unknown and estimates
ρ = E[1/F | f] from the posterior distribution of population given
sample frequencies.  Following the paper, the posterior is negative
binomial: F − f ~ NegBinomial(f, p) with sampling rate p estimated by
f / Σ W over the combination's group.

Three estimation modes are provided:

* ``simple`` — the paper's Algorithm 5 shortcut: ρ = f / Σ W
  (λ = Σ W_t / f_q̂ plugged into Equation 1).
* ``series`` — the exact posterior mean
  E[1/F | f] = Σ_{h≥f} (1/h) C(h−1, f−1) p^f (1−p)^{h−f}, summed
  numerically to convergence (for f = 1 this is the classical
  (p/(1−p))·ln(1/p)).
* ``sampled`` — Monte-Carlo over ``scipy.stats.nbinom`` draws.  This is
  the "off-the-shelf statistical library" mode of Section 5.2, kept
  deliberately library-bound so the Fig. 7e cost profile (interaction
  overhead dominating) can be reproduced.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

import numpy as np

from ..errors import ReproError
from ..model.microdata import MicrodataDB
from ..model.nulls import MAYBE_MATCH, NullSemantics
from .base import RiskMeasure, RiskReport, register_measure

_MODES = ("simple", "series", "sampled")


def posterior_mean_inverse_frequency(
    sample_frequency: int, sampling_rate: float, tolerance: float = 1e-12
) -> float:
    """E[1/F | f] under the negative-binomial posterior.

    ``sampling_rate`` is p ∈ (0, 1]; at p = 1 the population equals the
    sample and the risk is exactly 1/f.
    """
    f = int(sample_frequency)
    if f < 1:
        raise ReproError(f"sample frequency must be >= 1, got {f}")
    p = float(sampling_rate)
    if p >= 1.0:
        return 1.0 / f
    if p <= 0.0:
        return 0.0
    if f == 1:
        # Closed form: (p / (1-p)) * ln(1/p)
        return (p / (1.0 - p)) * math.log(1.0 / p)
    # Numeric series: term(h) = (1/h) * C(h-1, f-1) * p^f * (1-p)^(h-f)
    q = 1.0 - p
    term = (p ** f) / f  # h = f: C(f-1, f-1) = 1
    total = term
    h = f
    coefficient = 1.0  # C(h-1, f-1)
    while True:
        h += 1
        coefficient *= (h - 1) / (h - f)
        term_h = coefficient * (p ** f) * (q ** (h - f)) / h
        total += term_h
        if term_h < tolerance and h > f + 10:
            break
        if h > f + 100_000:  # safety: the series converges geometrically
            break
    return min(1.0, total)


@register_measure
class IndividualRisk(RiskMeasure):
    """ρ per quasi-identifier combination via the BF posterior."""

    name = "individual"

    def __init__(
        self,
        mode: str = "simple",
        samples: int = 2_000,
        seed: int = 20210323,
    ):
        if mode not in _MODES:
            raise ReproError(
                f"unknown individual-risk mode {mode!r}; use one of {_MODES}"
            )
        self.mode = mode
        self.samples = int(samples)
        self.seed = seed

    def assess(
        self,
        db: MicrodataDB,
        semantics: NullSemantics = MAYBE_MATCH,
        attributes: Optional[Sequence[str]] = None,
    ) -> RiskReport:
        attributes = self._resolve_attributes(db, attributes)
        counts, weight_sums = semantics.match_aggregate(
            db, attributes, values=db.weights()
        )
        scores = []
        details = []
        cache = {}
        rng = np.random.default_rng(self.seed)
        for index in range(len(db)):
            f = max(1, counts[index])
            weight_sum = max(weight_sums[index], float(f))
            key = (f, round(weight_sum, 9))
            score = cache.get(key)
            if score is None:
                score = self._estimate(f, weight_sum, rng)
                cache[key] = score
            scores.append(score)
            details.append(
                f"f={f}, sum(W)={weight_sum:.6g}, mode={self.mode}"
            )
        return RiskReport(
            self.name,
            scores,
            attributes,
            details=details,
            parameters={"mode": self.mode, "semantics": semantics.name},
        )

    def safe_from_group(self, count, weight_sum, threshold):
        """Group statistics fully determine the estimate for the
        deterministic modes; the Monte-Carlo mode declines (None) so
        the cycle does not pay a sampling call per recheck."""
        if self.mode == "sampled":
            return None
        f = max(1, count)
        weight_sum = max(weight_sum, float(f))
        return self._estimate(f, weight_sum, None) <= threshold

    def _estimate(self, f: int, weight_sum: float, rng) -> float:
        if self.mode == "simple":
            return min(1.0, f / weight_sum)
        p = min(1.0, f / weight_sum)
        if self.mode == "series":
            return posterior_mean_inverse_frequency(f, p)
        # sampled: F = f + NegBinomial(f, p); average of 1/F.
        from scipy import stats

        if p >= 1.0:
            return 1.0 / f
        extra = stats.nbinom.rvs(
            f, p, size=self.samples, random_state=rng
        )
        population = f + extra
        return float(np.mean(1.0 / population))
