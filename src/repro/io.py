"""Dataset persistence: CSV rows + JSON schema sidecars.

A microdata DB round-trips through two files:

* ``<name>.csv`` — the rows, with labelled nulls serialized as
  ``#NULL:<label>`` so suppression survives the round trip;
* ``<name>.schema.json`` — attribute order, categories, descriptions.

Numeric cells are stored as-is and re-parsed on load (int, then float,
then string), which is sufficient for the banded categorical survey
data this framework targets.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from .errors import SchemaError
from .model.microdata import MicrodataDB
from .model.schema import AttributeCategory, MicrodataSchema
from .vadalog.terms import LabelledNull

_NULL_PREFIX = "#NULL:"


def _encode_cell(value: Any) -> str:
    if isinstance(value, LabelledNull):
        return f"{_NULL_PREFIX}{value.label}"
    return "" if value is None else str(value)


def _decode_cell(text: str, column_type: Optional[str] = None) -> Any:
    if text.startswith(_NULL_PREFIX):
        return LabelledNull(int(text[len(_NULL_PREFIX):]))
    if column_type == "str":
        return text
    if column_type == "int":
        return int(text)
    if column_type == "float":
        return float(text)
    # No type hint: best-effort auto-parse, refusing lossy conversions
    # (leading zeros, '+' signs) so identifiers survive the roundtrip.
    try:
        value = int(text)
        if str(value) == text:
            return value
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        return text


def _infer_column_type(db: MicrodataDB, attribute: str) -> str:
    """Infer a column's storage type from its non-null values."""
    seen_float = False
    for row in db.rows:
        value = row[attribute]
        if isinstance(value, LabelledNull) or value is None:
            continue
        if isinstance(value, bool) or isinstance(value, str):
            return "str"
        if isinstance(value, float):
            seen_float = True
        elif not isinstance(value, int):
            return "str"
    return "float" if seen_float else "int"


def schema_to_dict(schema: MicrodataSchema) -> Dict:
    """Serialize a schema to a JSON-compatible dict."""
    return {
        "attributes": [
            {
                "name": name,
                "category": str(schema.categories[name]),
                "description": schema.descriptions.get(name, ""),
            }
            for name in schema.attributes
        ]
    }


def schema_from_dict(payload: Dict) -> MicrodataSchema:
    """Rebuild a schema from :func:`schema_to_dict` output."""
    try:
        entries = payload["attributes"]
    except (KeyError, TypeError):
        raise SchemaError("schema payload misses 'attributes'") from None
    names: List[str] = []
    categories: Dict[str, AttributeCategory] = {}
    descriptions: Dict[str, str] = {}
    for entry in entries:
        name = entry["name"]
        names.append(name)
        categories[name] = AttributeCategory.from_label(entry["category"])
        if entry.get("description"):
            descriptions[name] = entry["description"]
    return MicrodataSchema(names, categories, descriptions)


def save_csv(
    db: MicrodataDB,
    csv_path: Union[str, Path],
    schema_path: Optional[Union[str, Path]] = None,
) -> Path:
    """Write a microdata DB (and its schema sidecar) to disk."""
    csv_path = Path(csv_path)
    if schema_path is None:
        schema_path = csv_path.with_suffix(".schema.json")
    with open(csv_path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(db.schema.attributes)
        for row in db.rows:
            writer.writerow(
                [_encode_cell(row[a]) for a in db.schema.attributes]
            )
    payload = schema_to_dict(db.schema)
    payload["types"] = {
        attribute: _infer_column_type(db, attribute)
        for attribute in db.schema.attributes
    }
    with open(schema_path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
    return csv_path


def load_csv(
    csv_path: Union[str, Path],
    schema: Optional[Union[MicrodataSchema, str, Path]] = None,
    name: Optional[str] = None,
) -> MicrodataDB:
    """Load a microdata DB from CSV plus schema (object, path, or the
    default ``<csv>.schema.json`` sidecar)."""
    csv_path = Path(csv_path)
    if schema is None:
        schema = csv_path.with_suffix(".schema.json")
    types: Dict[str, str] = {}
    if not isinstance(schema, MicrodataSchema):
        schema_file = Path(schema)
        if not schema_file.exists():
            raise SchemaError(
                f"schema file {schema_file} not found; pass a "
                "MicrodataSchema or a JSON sidecar path"
            )
        with open(schema_file, encoding="utf-8") as handle:
            payload = json.load(handle)
        schema = schema_from_dict(payload)
        types = payload.get("types", {})
    with open(csv_path, newline="", encoding="utf-8") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise SchemaError(f"{csv_path} is empty") from None
        missing = [a for a in schema.attributes if a not in header]
        if missing:
            raise SchemaError(
                f"CSV header misses schema attribute(s): {missing}"
            )
        rows = []
        for record in reader:
            values = dict(zip(header, record))
            rows.append(
                {
                    a: _decode_cell(values[a], types.get(a))
                    for a in schema.attributes
                }
            )
    return MicrodataDB(name or csv_path.stem, schema, rows)
