"""repro.vadalog_programs — the paper's Algorithms 1-9 shipped as
Vadalog source modules, plus the external libraries backing them."""

from .externals import (
    CycleState,
    cycle_registry,
    notin_external,
    similar_external,
)
from .programs import (
    ANONYMIZATION_CYCLE,
    CATEGORIZATION,
    CLUSTER_RISK,
    GLOBAL_RECODING,
    INDIVIDUAL_RISK,
    K_ANONYMITY,
    L_DIVERSITY,
    LOCAL_SUPPRESSION,
    OWNERSHIP_CONTROL,
    PROGRAMS,
    REIDENTIFICATION,
    SUDA,
    TUPLE_BUILD,
    program_source,
)

__all__ = [
    "ANONYMIZATION_CYCLE",
    "CATEGORIZATION",
    "CLUSTER_RISK",
    "CycleState",
    "GLOBAL_RECODING",
    "INDIVIDUAL_RISK",
    "K_ANONYMITY",
    "L_DIVERSITY",
    "LOCAL_SUPPRESSION",
    "OWNERSHIP_CONTROL",
    "PROGRAMS",
    "REIDENTIFICATION",
    "SUDA",
    "TUPLE_BUILD",
    "cycle_registry",
    "notin_external",
    "program_source",
    "similar_external",
]
