"""The paper's Algorithms 1-9 as Vadalog source text.

These programs run on the :mod:`repro.vadalog` engine and are the
declarative fidelity path of the reproduction; the native executors in
:mod:`repro.risk` / :mod:`repro.anonymize` are the scaled plug-in path
(the paper itself plugs ``#risk`` / ``#anonymize`` as external library
atoms).  Equivalence between the two paths is asserted by the test
suite on the survey fixtures.

Transcription notes (documented deviations from the paper's listings):

* Variable-arity ``TupleA(R, *VSet[AnonSet])`` packing/unpacking is
  modeled with set-valued terms: ``Q = project(VSet, ASet)`` groups by
  the projected name-value set, which is value-equivalent to grouping
  by the unpacked terms.
* Algorithm 6's Rules 3-4 as printed add the new attribute to the *old*
  combination and copy members from the new combination into the old
  one; we transcribe the evidently intended direction (the new
  combination extends the old one with the attribute).
* Algorithm 6's ``not In(A, Z1)`` negates a predicate inside its own
  recursive component (unstratifiable); like the Vadalog system's
  operational reading, we use the ``#notin`` external, which checks the
  store at firing time.
* Engine-side aggregation groups labelled nulls by label (standard
  Skolem semantics).  The maybe-match =⊥ grouping of Section 4.3 lives
  in the native path (:mod:`repro.model.nulls`); Figure 7c contrasts
  the two.
"""

from __future__ import annotations

from typing import Dict

#: Algorithm 1 — attribute categorization by recursive experience.
CATEGORIZATION = """
@input("att").
@input("expBase").
@output("cat").

% Attribute *names* and categories are metadata, not row values.
@category("att", 1, "public").
@category("expBase", 0, "public").

% Rule 1: every attribute gets some category (existential).
@label("cat-1").
att(M, A, _D) -> exists(C) cat(M, A, C).

% Rule 2: borrow the category of a sufficiently similar known attribute.
@label("cat-2").
att(M, A, _D), expBase(A1, C), #similar(A, A1) -> cat(M, A, C).

% Rule 3: consolidate decisions back into the experience base.
@label("cat-3").
cat(_M, A, C) -> expBase(A, C).

% Rule 4 (EGD): one category per attribute; constant clashes surface
% as violations for human inspection.
@label("cat-4").
C1 = C2 :- cat(M, A, C1), cat(M, A, C2).
"""

#: Algorithm 2, Rule 1 — build Tuple facts from the metadata
#: dictionary (quasi-identifiers and the sampling weight only;
#: identifiers are implicitly dropped).
TUPLE_BUILD = """
@input("val").
@input("category").
@output("tuple").

% The row handle I is a linkage quasi-identifier; the value position V
% may carry identifier-category values before the category filter.
@category("val", 1, "qi").
@category("val", 3, "identifier").

% The C in [...] guard keeps identifier-category attributes out of
% VSet, but that filter is value-level and invisible to the position
% analysis, which must assume V's worst category reaches the head.
@lint_ignore("VDL070", "the category filter excludes identifier-category attributes from VSet; the guard is value-level, below the position analysis' resolution").
@lint_ignore("VDL071", "tuple is the pipeline's internal hand-off, not a release; its consumers gate publication on #risk").

@label("tuple-build").
val(M, I, A, V), category(M, A, C),
    C in ["Quasi-identifier", "Sampling Weight"],
    VSet = munion((A, V), <A>) -> tuple(M, I, VSet).
"""

#: Algorithm 2, Rules 2-3 — the cycle trigger: risky tuples are handed
#: to the #anonymize external (which injects replacement val facts,
#: re-entering Rule 1); safe tuples are copied to tupleA.
ANONYMIZATION_CYCLE = """
@input("tuple").
@input("param").
@output("anonymized").
@output("tupleA").

@category("tuple", 1, "qi").
@category("tuple", 2, "qi").

@label("cycle-anonymize").
tuple(M, I, _VSet), #risk(I, R), param("T", T), R > T,
    #anonymize(M, I) -> anonymized(M, I).

@label("cycle-accept").
tuple(M, I, VSet), #risk(I, R), param("T", T), R <= T
    -> tupleA(M, I, VSet).
"""

#: Algorithm 3 — re-identification-based risk evaluation.
REIDENTIFICATION = """
@input("tuple").
@input("category").
@input("anonSet").
@output("riskOutput").

@category("tuple", 1, "qi").
@category("tuple", 2, "qi").

@label("reid-1").
tuple(M, I, VSet), category(M, W, "Sampling Weight"), anonSet(M, ASet),
    Q = project(VSet, ASet), WV = get(VSet, W),
    S = msum(WV, <I>) -> tupleWeights(Q, S).

@label("reid-2").
tuple(M, I, VSet), anonSet(M, ASet), Q = project(VSet, ASet),
    tupleWeights(Q, S), R = 1 / S -> riskOutput(I, R).
"""

#: Algorithm 4 — k-anonymity (k supplied as a param fact).
K_ANONYMITY = """
@input("tuple").
@input("anonSet").
@input("param").
@output("riskOutput").

@category("tuple", 1, "qi").
@category("tuple", 2, "qi").

@label("kanon-1").
tuple(M, I, VSet), anonSet(M, ASet), Q = project(VSet, ASet),
    F = mcount(<I>) -> tupleFreq(Q, F).

@label("kanon-2").
tuple(M, I, VSet), anonSet(M, ASet), Q = project(VSet, ASet),
    tupleFreq(Q, F), param("k", K),
    R = case F < K then 1 else 0 -> riskOutput(I, R).
"""

#: Algorithm 5 — individual risk (simple posterior shortcut F/Sum W).
INDIVIDUAL_RISK = """
@input("tuple").
@input("category").
@input("anonSet").
@output("riskOutput").

@category("tuple", 1, "qi").
@category("tuple", 2, "qi").

@label("ind-1").
tuple(M, I, VSet), category(M, W, "Sampling Weight"), anonSet(M, ASet),
    Q = project(VSet, ASet), WV = get(VSet, W),
    F = mcount(<I>), S = msum(WV, <I>) -> tupleStats(Q, F, S).

@label("ind-2").
tuple(M, I, VSet), anonSet(M, ASet), Q = project(VSet, ASet),
    tupleStats(Q, F, S), R = F / S -> riskOutput(I, R).
"""

#: Extension — l-diversity: a tuple is dangerous when its group over
#: the anonSet projection carries fewer than l distinct values of the
#: sensitive attribute (named by a param fact).
L_DIVERSITY = """
@input("param").
@input("val").
@input("tuple").
@input("anonSet").
@output("riskOutput").

@category("val", 1, "qi").
@category("val", 3, "sensitive").
@category("tuple", 1, "qi").
@category("tuple", 2, "qi").

@label("ldiv-sensitive").
param("sensitive", A), val(M, I, A, S) -> sensVal(M, I, S).

@label("ldiv-count").
tuple(M, I, VSet), anonSet(M, ASet), sensVal(M, I, S),
    Q = project(VSet, ASet), D = mcount(<S>) -> qDiversity(Q, D).

@label("ldiv-risk").
tuple(M, I, VSet), anonSet(M, ASet), Q = project(VSet, ASet),
    qDiversity(Q, D), param("l", L),
    R = case D < L then 1 else 0 -> riskOutput(I, R).
"""

#: Algorithm 6 — SUDA: minimal sample unique detection.
SUDA = """
@input("tuple").
@input("category").
@input("param").
@output("riskOutput").

@category("tuple", 1, "qi").
@category("tuple", 2, "qi").

% SUDA's combination lattice is deliberately outside the warded
% fragment: rules 4/5/7a join the combination nulls invented by rules
% 2/3, so the nulls have no single ward.  The chase still terminates
% because the attribute sets are finite; see the transcription notes.
@lint_ignore("VDL020", "combination nulls are joined by design; termination is guaranteed by the finite quasi-identifier lattice").
@lint_ignore("VDL021", "combination identifiers are labelled nulls shared across atoms by construction").

% Rule 1: focus on input tuples.
@label("suda-1").
tuple(M, I, VSet) -> tupleI(M, I, VSet).

% Rule 2: a singleton combination per quasi-identifier.
@label("suda-2").
tupleI(M, I, _VSet), category(M, A, "Quasi-identifier")
    -> exists(Z) comb(Z, I), in(A, Z).

% Rule 3: extend a combination with a quasi-identifier not yet in it.
@label("suda-3").
comb(Z1, I), tupleI(M, I, _VSet), category(M, A, "Quasi-identifier"),
    #notin(A, Z1) -> exists(Z) comb(Z, I), inComb(Z, Z1), in(A, Z).

% Rule 4: the new combination inherits the old one's members.
@label("suda-4").
inComb(Z, Z1), in(A, Z1) -> in(A, Z).

% Rule 5: materialize each combination's attribute set.
@label("suda-5").
comb(Z, I), in(A, Z), ASet = munion(A, <A>) -> combSet(Z, I, ASet).

% Rule 5b: project the tuple onto the combination.
@label("suda-5b").
combSet(_Z, I, ASet), tupleI(_M, I, VSet),
    Q = project(VSet, ASet) -> tupleC(I, Q).

% Rule 6: sample uniques — combinations matched by exactly one tuple.
@label("suda-6a").
tupleC(I, Q), U = mcount(<I>) -> qFreq(Q, U).

@label("suda-6b").
tupleC(I, Q), qFreq(Q, U), U == 1 -> exists(S) su(S, Q), hasSu(I, S).

% Rule 7: minimality — no strictly smaller sample unique for the tuple.
@label("suda-7a").
hasSu(I, S), su(S, Q), hasSu(I, S1), su(S1, Q1),
    subset(Q1, Q) -> notMinimal(I, S).

@label("suda-7b").
hasSu(I, S), not notMinimal(I, S) -> msu(I, S).

% Rule 8: dangerous when an MSU is smaller than the threshold k.
@label("suda-8a").
msu(I, S), su(S, Q), param("suda_k", K), size(Q) < K -> dangerous(I).

@label("suda-8b").
dangerous(I) -> riskOutput(I, 1).

@label("suda-8c").
tupleI(_M, I, _VSet), not dangerous(I) -> riskOutput(I, 0).
"""

#: Algorithm 7 — local suppression (the #suppress external injects the
#: labelled null and returns the rewritten tuple as new val facts).
LOCAL_SUPPRESSION = """
@input("tuple").
@input("anonymize").
@input("category").
@output("suppressed").

@category("tuple", 1, "qi").
@category("tuple", 2, "qi").

@label("suppress").
tuple(M, I, VSet), anonymize(M, I), category(M, A, "Quasi-identifier"),
    V = get(VSet, A), not is_null(V),
    #suppress(M, I, A) -> suppressed(M, I, A).
"""

#: Algorithm 8 — global recoding over the domain hierarchy.
GLOBAL_RECODING = """
@input("tuple").
@input("anonymize").
@input("category").
@input("typeOf").
@input("subTypeOf").
@input("isA").
@input("instOf").
@output("recoded").

@category("tuple", 1, "qi").
@category("tuple", 2, "qi").

@label("recode").
tuple(M, I, VSet), anonymize(M, I), category(M, A, "Quasi-identifier"),
    typeOf(A, X), subTypeOf(X, Y), V = get(VSet, A),
    isA(V, Z), instOf(Z, Y),
    #recode(M, I, A, Z) -> recoded(M, I, A, Z).
"""

#: Section 4.4 — company control (with the reflexivity the paper
#: assumes, so X's own shares count toward its bloc's joint holdings).
OWNERSHIP_CONTROL = """
@input("own").
@output("rel").

% Shareholding structures are public registry data.
@category("own", 0, "public").
@category("own", 1, "public").
@category("own", 2, "public").

@label("own-reflexive").
own(X, _Y, _W) -> rel(X, X).

@label("own-direct").
own(X, Y, W), W > 0.5 -> rel(X, Y).

@label("own-joint").
rel(X, Z), own(Z, Y, W), msum(W, <Z>) > 0.5 -> rel(X, Y).
"""

#: Algorithm 9, Rule 2 — cluster risk combination via the monotonic
#: product: R_cluster = 1 - prod(1 - R) over linked tuples.
CLUSTER_RISK = """
@input("relRow").
@input("riskOutput").
@output("clusterRisk").

@category("relRow", 0, "qi").
@category("relRow", 1, "qi").

@label("cluster-risk").
relRow(I1, I2), riskOutput(I2, R),
    P = mprod(1 - R, <I2>) -> clusterSurvival(I1, P).

@label("cluster-risk-out").
clusterSurvival(I1, P), RC = 1 - P -> clusterRisk(I1, RC).
"""

#: Registry of all shipped modules by name.
PROGRAMS: Dict[str, str] = {
    "categorization": CATEGORIZATION,
    "tuple-build": TUPLE_BUILD,
    "anonymization-cycle": ANONYMIZATION_CYCLE,
    "reidentification": REIDENTIFICATION,
    "k-anonymity": K_ANONYMITY,
    "individual-risk": INDIVIDUAL_RISK,
    "l-diversity": L_DIVERSITY,
    "suda": SUDA,
    "local-suppression": LOCAL_SUPPRESSION,
    "global-recoding": GLOBAL_RECODING,
    "ownership-control": OWNERSHIP_CONTROL,
    "cluster-risk": CLUSTER_RISK,
}


def program_source(name: str) -> str:
    """Fetch a shipped module's Vadalog source by name."""
    try:
        return PROGRAMS[name]
    except KeyError:
        raise KeyError(
            f"unknown Vadalog module {name!r}; shipped: {sorted(PROGRAMS)}"
        ) from None
