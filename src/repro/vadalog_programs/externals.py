"""External-predicate implementations backing the shipped programs.

The paper's ``#risk`` and ``#anonymize`` are "atoms defined in external
libraries"; this module provides those libraries for the engine path:

* ``#similar(A, A1)`` — the pluggable attribute-name similarity of
  Algorithm 1 Rule 2;
* ``#notin(A, Z)`` — operational negation inside Algorithm 6's
  recursive combination generation (see transcription notes);
* ``#risk(I, R)`` / ``#anonymize(M, I)`` / ``#suppress(M, I, A)`` /
  ``#recode(M, I, A, Z)`` — the cycle plug-ins, sharing a
  :class:`CycleState` that tracks the current (most anonymized) version
  of every tuple, mirroring the monotonic-aggregation contributor
  semantics that lets anonymized tuples supersede their originals.
"""

from __future__ import annotations

from collections import Counter
from typing import Callable, Dict, FrozenSet, Optional, Tuple

from ..categorize.similarity import SimilarityFunction, combined
from ..errors import EvaluationError
from ..vadalog.atoms import Atom
from ..vadalog.externals import ExternalRegistry
from ..vadalog.terms import LabelledNull, unwrap, wrap


def similar_external(
    similarity: SimilarityFunction = combined, threshold: float = 0.55
):
    """Boolean external: names are ∼-similar above the threshold."""

    def impl(context, a, b):
        if a is not None and b is not None and similarity(a, b) >= threshold:
            yield (a, b)

    return impl


def notin_external(predicate: str = "in"):
    """True when ``predicate(a, z)`` is absent from the store *now*."""

    def impl(context, a, z):
        atom = Atom(predicate, (wrap(a), wrap(z)))
        if not context.store.contains(atom):
            yield (a, z)

    return impl


class CycleState:
    """Current VSet per (microDB, tuple id) for the engine-path cycle.

    Initialized lazily from the store's ``tuple`` facts; every
    suppression or recoding updates the entry and asserts the new
    ``tuple`` fact so downstream rules see it.
    """

    def __init__(
        self,
        k: int = 2,
        threshold: float = 0.5,
        semantics: str = "standard",
    ):
        if semantics not in ("standard", "maybe-match"):
            raise EvaluationError(
                f"unknown null semantics {semantics!r} for CycleState"
            )
        self.k = k
        self.threshold = threshold
        self.semantics = semantics
        self._current: Dict[Tuple, FrozenSet] = {}
        # microDB -> quasi-identifier name set (from anonSet facts);
        # grouping and suppression are restricted to these names so the
        # sampling-weight pair carried in VSet never drives matching.
        self._anon_sets: Dict[object, FrozenSet[str]] = {}
        self._loaded = False

    # -- store synchronisation -------------------------------------------

    def _load(self, context) -> None:
        if self._loaded:
            return
        for fact in context.store.facts("anonSet"):
            self._anon_sets[unwrap(fact.terms[0])] = frozenset(
                unwrap(fact.terms[1])
            )
        for fact in context.store.facts("tuple"):
            key = (unwrap(fact.terms[0]), unwrap(fact.terms[1]))
            vset = unwrap(fact.terms[2])
            existing = self._current.get(key)
            if existing is None or _null_count(vset) > _null_count(existing):
                self._current[key] = vset
        self._loaded = True

    def _project(self, micro_db, vset) -> FrozenSet:
        """Restrict a VSet to the microDB's anonSet (when declared)."""
        names = self._anon_sets.get(micro_db)
        if names is None:
            return vset
        return frozenset(
            (name, value) for name, value in vset if name in names
        )

    def current(self, context, micro_db, tuple_id) -> Optional[FrozenSet]:
        self._load(context)
        return self._current.get((micro_db, tuple_id))

    def replace(self, context, micro_db, tuple_id, vset) -> None:
        self._current[(micro_db, tuple_id)] = vset
        context.assert_fact("tuple", micro_db, tuple_id, vset)

    # -- risk (k-anonymity under standard null semantics) -----------------

    def risk_of(self, context, tuple_id) -> float:
        self._load(context)
        target = None
        target_db = None
        for (micro_db, current_id), vset in self._current.items():
            if current_id == tuple_id:
                target = self._project(micro_db, vset)
                target_db = micro_db
                break
        if target is None:
            raise EvaluationError(f"#risk: unknown tuple id {tuple_id!r}")
        projected = [
            self._project(micro_db, vset)
            for (micro_db, _), vset in self._current.items()
            if micro_db == target_db
        ]
        if self.semantics == "standard":
            groups: Counter = Counter(projected)
            return 1.0 if groups[target] < self.k else 0.0
        frequency = sum(
            1 for vset in projected if _vsets_maybe_match(target, vset)
        )
        return 1.0 if frequency < self.k else 0.0

    # -- anonymization ------------------------------------------------------

    def suppress(
        self, context, micro_db, tuple_id, attribute: Optional[str] = None
    ) -> Optional[str]:
        """Replace one (given or first non-null) QI value with a fresh
        labelled null; returns the suppressed attribute or None."""
        vset = self.current(context, micro_db, tuple_id)
        if vset is None:
            return None
        names = self._anon_sets.get(micro_db)
        candidates = sorted(
            name
            for name, value in vset
            if not isinstance(value, LabelledNull)
            and (attribute is None or name == attribute)
            and (names is None or name in names)
        )
        if not candidates:
            return None
        chosen = candidates[0]
        new_vset = frozenset(
            (name, context.fresh_null() if name == chosen else value)
            for name, value in vset
        )
        self.replace(context, micro_db, tuple_id, new_vset)
        return chosen

    def recode(self, context, micro_db, tuple_id, attribute, new_value):
        vset = self.current(context, micro_db, tuple_id)
        if vset is None:
            return False
        new_vset = frozenset(
            (name, new_value if name == attribute else value)
            for name, value in vset
        )
        if new_vset == vset:
            return False
        self.replace(context, micro_db, tuple_id, new_vset)
        return True


def _null_count(vset) -> int:
    return sum(1 for _, value in vset if isinstance(value, LabelledNull))


def _vsets_maybe_match(a, b) -> bool:
    """=⊥ over name-value sets: per attribute, equal constants or at
    least one labelled null (Section 4.3)."""
    values_b = dict(b)
    for name, value in a:
        other = values_b.get(name)
        if isinstance(value, LabelledNull) or isinstance(other, LabelledNull):
            continue
        if value != other:
            return False
    return True


def cycle_registry(
    k: int = 2,
    threshold: float = 0.5,
    similarity: SimilarityFunction = combined,
    similarity_threshold: float = 0.55,
    semantics: str = "standard",
) -> Tuple[ExternalRegistry, CycleState]:
    """A registry with every external the shipped programs use, plus
    the shared cycle state (exposed so callers can read the final
    anonymized tuples)."""
    state = CycleState(k=k, threshold=threshold, semantics=semantics)
    registry = ExternalRegistry()
    registry.register(
        "similar", similar_external(similarity, similarity_threshold)
    )
    registry.register("notin", notin_external())

    def risk_impl(context, tuple_id, risk_value):
        computed = state.risk_of(context, tuple_id)
        if risk_value is None or risk_value == computed:
            yield (tuple_id, computed)

    def anonymize_impl(context, micro_db, tuple_id):
        # Only act if the current version is still risky (several rule
        # bindings may mention stale versions of the same tuple).
        if state.risk_of(context, tuple_id) <= state.threshold:
            return
        if state.suppress(context, micro_db, tuple_id) is not None:
            yield (micro_db, tuple_id)

    def suppress_impl(context, micro_db, tuple_id, attribute):
        chosen = state.suppress(context, micro_db, tuple_id, attribute)
        if chosen is not None:
            yield (micro_db, tuple_id, chosen)

    def recode_impl(context, micro_db, tuple_id, attribute, new_value):
        if state.recode(context, micro_db, tuple_id, attribute, new_value):
            yield (micro_db, tuple_id, attribute, new_value)

    registry.register("risk", risk_impl)
    registry.register("anonymize", anonymize_impl)
    registry.register("suppress", suppress_impl)
    registry.register("recode", recode_impl)
    return registry, state
