"""The Vada-SA facade: one object wiring the whole framework together.

Mirrors the architecture of Figure 3: an enterprise knowledge base
(metadata dictionary, experience base, domain hierarchies, business
knowledge), pluggable risk-measure and anonymization modules, and the
anonymization cycle as the orchestrating reasoning task.

Typical use::

    from repro import VadaSA
    from repro.data import inflation_growth_fragment

    vada = VadaSA()
    db = inflation_growth_fragment()
    vada.register(db)
    report = vada.assess(db.name, measure="k-anonymity", k=2)
    result = vada.anonymize(db.name, measure="k-anonymity", k=2)
    print(result.nulls_injected, result.information_loss)
    print(result.explain_row(0))
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Set, Union

from . import telemetry
from .anonymize.base import AnonymizationMethod, method_by_name
from .anonymize.cycle import AnonymizationCycle, CycleResult
from .anonymize.recoding import GlobalRecoding, RecodeThenSuppress
from .business.ownership import OwnershipGraph
from .business.propagation import clusters_for_db
from .categorize.categorizer import AttributeCategorizer, CategorizationResult
from .errors import ReproError, SchemaError
from .model.hierarchy import DomainHierarchy
from .model.metadata import ExperienceBase, MetadataDictionary
from .model.microdata import MicrodataDB
from .model.nulls import MAYBE_MATCH, NullSemantics, semantics_by_name
from .risk.base import RiskMeasure, RiskReport, measure_by_name


class VadaSA:
    """Production-style entry point for statistical disclosure control."""

    def __init__(
        self,
        experience: Optional[ExperienceBase] = None,
        hierarchy: Optional[DomainHierarchy] = None,
        semantics: Union[str, NullSemantics] = MAYBE_MATCH,
        threshold: float = 0.5,
    ):
        self.dictionary = MetadataDictionary()
        self.experience = experience or ExperienceBase.banking_defaults()
        self.hierarchy = hierarchy or DomainHierarchy()
        self.semantics = (
            semantics_by_name(semantics)
            if isinstance(semantics, str)
            else semantics
        )
        self.threshold = threshold
        self._datasets: Dict[str, MicrodataDB] = {}
        self._ownership: Optional[OwnershipGraph] = None
        #: Last anonymization outcome per dataset, so exchange_report
        #: can state the SDC numbers (nulls, loss, final risk) of the
        #: cycle that produced the shareable view.
        self._last_results: Dict[str, CycleResult] = {}

    # -- knowledge base -----------------------------------------------------

    def register(self, db: MicrodataDB) -> None:
        """Register a microdata DB (schema already categorized)."""
        self.dictionary.register_schema(db.name, db.schema)
        self._datasets[db.name] = db

    def register_uncategorized(
        self,
        db_name: str,
        attributes: Sequence[Any],
        rows: Sequence[Dict[str, Any]],
        similarity: str = "combined",
        similarity_threshold: float = 0.55,
    ) -> CategorizationResult:
        """Register attributes without categories and run Algorithm 1.

        ``attributes`` is a list of (name, description) pairs.  On a
        complete categorization the dataset becomes available like any
        registered one; otherwise the result's ``pending``/``conflicts``
        must be resolved (human in the loop) before use.
        """
        self.dictionary.register(db_name, list(attributes))
        categorizer = AttributeCategorizer(
            experience=self.experience,
            similarity=similarity,
            threshold=similarity_threshold,
        )
        result = categorizer.categorize_dictionary(self.dictionary, db_name)
        if result.is_complete:
            schema = self.dictionary.categorized_schema(db_name)
            self._datasets[db_name] = MicrodataDB(db_name, schema, rows)
        else:
            self._pending_rows = (db_name, list(rows))
        return result

    def complete_registration(self, db_name: str) -> MicrodataDB:
        """Finish a registration whose categorization needed manual
        resolution (after calling dictionary.set_category)."""
        pending = getattr(self, "_pending_rows", None)
        if not pending or pending[0] != db_name:
            raise SchemaError(f"no pending registration for {db_name!r}")
        schema = self.dictionary.categorized_schema(db_name)
        self._datasets[db_name] = MicrodataDB(db_name, schema, pending[1])
        self._pending_rows = None
        return self._datasets[db_name]

    def dataset(self, name: str) -> MicrodataDB:
        try:
            return self._datasets[name]
        except KeyError:
            raise SchemaError(f"unknown microdata DB {name!r}") from None

    def set_ownership(self, ownership: OwnershipGraph) -> None:
        """Install business knowledge: the company control graph."""
        self._ownership = ownership

    # -- reasoning tasks -------------------------------------------------------

    def assess(
        self,
        db_name: str,
        measure: Union[str, RiskMeasure] = "k-anonymity",
        attributes: Optional[Sequence[str]] = None,
        **measure_params,
    ) -> RiskReport:
        """Preemptive risk evaluation (desideratum iii): score the
        dataset before any sharing decision."""
        db = self.dataset(db_name)
        resolved = (
            measure_by_name(measure, **measure_params)
            if isinstance(measure, str)
            else measure
        )
        with telemetry.span(
            "vadasa.assess", db=db_name,
            measure=type(resolved).__name__,
        ) as span:
            report = resolved.assess(
                db, semantics=self.semantics, attributes=attributes
            )
            if telemetry.state.enabled:
                risky = len(report.risky_indices(self.threshold))
                span.set(rows=len(db), risky=risky)
                registry = telemetry.state.registry
                registry.counter(
                    "vadasa.assessments",
                    measure=type(resolved).__name__,
                ).inc()
                registry.counter("vadasa.risky_tuples").inc(risky)
                if telemetry.state.events is not None:
                    telemetry.state.events.emit(
                        "lifecycle", stage="assess", db=db_name,
                        measure=type(resolved).__name__,
                        rows=len(db), risky=risky,
                    )
        return report

    def anonymize(
        self,
        db_name: str,
        measure: Union[str, RiskMeasure] = "k-anonymity",
        method: Union[str, AnonymizationMethod] = "local-suppression",
        threshold: Optional[float] = None,
        use_business_knowledge: bool = False,
        tuple_ordering: str = "less-significant-first",
        qi_selection: str = "most-risky-first",
        attributes: Optional[Sequence[str]] = None,
        **measure_params,
    ) -> CycleResult:
        """Run the anonymization cycle (active behaviour, desideratum
        iv) and return the anonymized dataset with its full trace."""
        db = self.dataset(db_name)
        resolved_measure = (
            measure_by_name(measure, **measure_params)
            if isinstance(measure, str)
            else measure
        )
        resolved_method = self._resolve_method(method)
        clusters: Optional[List[Set[int]]] = None
        if use_business_knowledge:
            if self._ownership is None:
                raise ReproError(
                    "business knowledge requested but no ownership graph "
                    "installed; call set_ownership first"
                )
            clusters = clusters_for_db(db, self._ownership)
        cycle = AnonymizationCycle(
            resolved_measure,
            resolved_method,
            threshold=self.threshold if threshold is None else threshold,
            semantics=self.semantics,
            tuple_ordering=tuple_ordering,
            qi_selection=qi_selection,
            clusters=clusters,
            attributes=attributes,
        )
        with telemetry.span(
            "vadasa.anonymize", db=db_name,
            measure=type(resolved_measure).__name__,
            method=type(resolved_method).__name__,
        ) as span:
            result = cycle.run(db)
            if telemetry.state.enabled:
                span.set(
                    iterations=result.iterations,
                    steps=len(result.steps),
                    nulls_injected=result.nulls_injected,
                    converged=result.converged,
                )
                registry = telemetry.state.registry
                registry.counter("vadasa.anonymizations").inc()
                registry.counter("vadasa.suppressions").inc(
                    len(result.steps)
                )
                registry.counter("vadasa.nulls_injected").inc(
                    result.nulls_injected
                )
                if telemetry.state.events is not None:
                    telemetry.state.events.emit(
                        "lifecycle", stage="anonymize", db=db_name,
                        measure=type(resolved_measure).__name__,
                        method=type(resolved_method).__name__,
                        iterations=result.iterations,
                        steps=len(result.steps),
                        nulls_injected=result.nulls_injected,
                        converged=result.converged,
                    )
        self._last_results[db_name] = result
        return result

    def last_result(self, db_name: str) -> Optional[CycleResult]:
        """The most recent anonymization outcome for a dataset (None
        when :meth:`anonymize` has not run for it)."""
        return self._last_results.get(db_name)

    def share(
        self,
        db_name: str,
        **anonymize_kwargs,
    ) -> MicrodataDB:
        """End-to-end exchange: anonymize until the threshold holds and
        return the shared view (identifiers dropped)."""
        with telemetry.span("vadasa.share", db=db_name):
            result = self.anonymize(db_name, **anonymize_kwargs)
            if not result.converged:
                raise ReproError(
                    f"anonymization of {db_name!r} did not reach the "
                    f"threshold; {len(result.final_report.risky_indices(self.threshold))} "
                    "tuple(s) remain risky"
                )
            if telemetry.state.enabled:
                telemetry.state.registry.counter("vadasa.shares").inc()
                shared = result.shared_view()
                if telemetry.state.events is not None:
                    telemetry.state.events.emit(
                        "lifecycle", stage="share", db=db_name,
                        rows=len(shared),
                        nulls_injected=result.nulls_injected,
                    )
                return shared
            return result.shared_view()

    def exchange_report(
        self,
        db_name: str,
        measures: Optional[Sequence[str]] = None,
        threshold: Optional[float] = None,
        params: Optional[Dict[str, Dict[str, Any]]] = None,
    ) -> str:
        """A human-readable pre-exchange summary: per-measure risky
        counts, file-level indicators and the release-gate verdict —
        what an analyst reads before deciding to share (desiderata iii
        and vi in one page)."""
        from .risk.file_level import file_risk, release_gate

        db = self.dataset(db_name)
        threshold = self.threshold if threshold is None else threshold
        if measures is None:
            measures = ["k-anonymity", "reidentification", "individual"]
        lines = [
            f"Exchange report for {db_name!r}",
            f"  {len(db)} tuples, quasi-identifiers: "
            f"{', '.join(db.quasi_identifiers)}",
            f"  null semantics: {self.semantics.name}, T = {threshold}",
            "",
        ]
        params = params or {}
        gate_pass = True
        for name in measures:
            measure = measure_by_name(name, **params.get(name, {}))
            with telemetry.profile_block("vadasa.report_assess",
                                         measure=name):
                report = measure.assess(db, semantics=self.semantics)
            aggregate = file_risk(report, threshold)
            risky = len(report.risky_indices(threshold))
            verdict = release_gate(report, threshold)
            gate_pass = gate_pass and verdict
            lines.append(
                f"  {name:18s} risky {risky:5d}   max "
                f"{report.max_score():.4g}   mean "
                f"{report.mean_score():.4g}   {aggregate}"
            )
        lines.append("")
        lines.append(
            "  release gate: " + ("PASS" if gate_pass else "BLOCKED —"
                                  " anonymize before sharing")
        )
        result = self._last_results.get(db_name)
        if result is not None:
            final = result.final_report
            lines.append("")
            lines.append("  SDC outcome (last anonymization cycle):")
            lines.append(
                f"    {result.iterations} iteration(s), "
                f"{len(result.steps)} step(s), converged="
                f"{result.converged}"
            )
            lines.append(
                f"    final {final.measure} risk: max "
                f"{final.max_score():.4g}, mean "
                f"{final.mean_score():.4g}, risky "
                f"{len(final.risky_indices(threshold))}"
            )
            lines.append(
                f"    nulls injected: {result.nulls_injected}, "
                f"recoded cells: {result.recoded_cells}"
            )
            lines.append(
                f"    information loss: {result.information_loss:.4g}, "
                f"utility-weighted loss: "
                f"{result.utility_weighted_loss:.4g}"
            )
        if telemetry.state.enabled:
            lines.append("")
            lines.append("  telemetry:")
            snapshot = telemetry.snapshot()
            for key, value in snapshot["counters"].items():
                if key.startswith(("vadasa.", "cycle.", "chase.",
                                   "sdc.")):
                    lines.append(f"    {key} = {value}")
            for key, value in snapshot["gauges"].items():
                if key.startswith("sdc."):
                    lines.append(f"    {key} = {value:.6g}")
            for key, data in snapshot["histograms"].items():
                if key.startswith(("vadasa.", "cycle.", "chase.")):
                    lines.append(
                        f"    {key}: n={data['count']} "
                        f"mean={data['mean'] / 1e6:.3f}ms "
                        f"p95={data['p95'] / 1e6:.3f}ms"
                    )
                elif key.startswith("sdc."):
                    lines.append(
                        f"    {key}: n={data['count']} "
                        f"mean={data['mean']:.4g} p95={data['p95']:.4g}"
                    )
        return "\n".join(lines)

    # -- declarative path -----------------------------------------------------

    def analyze_program(self, program_or_source, name=None, schema=None):
        """Run the static analyzer over a Vadalog program (a
        :class:`~repro.vadalog.Program` or source text) and return the
        :class:`~repro.vadalog.analysis.AnalysisReport`.

        When ``schema`` (a :class:`~repro.model.schema.MicrodataSchema`)
        is given, default ``@category`` sensitivity annotations for the
        paper's ``val``/``tuple`` encoding are derived from it and
        appended to the program's own — explicit source annotations
        take precedence (first-seed-wins)."""
        from .vadalog import Program
        from .vadalog.analysis import analyze, annotations_from_schema

        program = (
            program_or_source
            if isinstance(program_or_source, Program)
            else Program.parse(program_or_source, name=name)
        )
        if schema is not None:
            program = Program(
                rules=program.rules,
                egds=program.egds,
                facts=program.facts,
                annotations=(
                    list(program.annotations)
                    + annotations_from_schema(schema, program)
                ),
                name=program.name,
            )
        return analyze(program)

    def run_program(self, program_or_source, name=None, preflight=True,
                    **run_kwargs):
        """Evaluate a Vadalog program through the chase engine.

        The static-analysis pre-flight runs first and rejects
        error-level programs with a
        :class:`~repro.errors.StaticAnalysisError`; pass
        ``preflight=False`` to skip it (escape hatch).  Remaining
        keyword arguments go to :meth:`repro.vadalog.Program.run`.
        """
        from .vadalog import Program

        program = (
            program_or_source
            if isinstance(program_or_source, Program)
            else Program.parse(program_or_source, name=name)
        )
        return program.run(preflight=preflight, **run_kwargs)

    # -- helpers -------------------------------------------------------------------

    def _resolve_method(self, method):
        if isinstance(method, AnonymizationMethod):
            return method
        if method == "global-recoding":
            return GlobalRecoding(self.hierarchy)
        if method == "recode-then-suppress":
            return RecodeThenSuppress(self.hierarchy)
        return method_by_name(method)

    def __repr__(self):
        return (
            f"VadaSA({len(self._datasets)} dataset(s), semantics="
            f"{self.semantics.name}, T={self.threshold})"
        )
