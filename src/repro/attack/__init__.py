"""repro.attack — the Section 2.2 re-identification attack strategy
(blocking + matching) and its evaluation harness."""

from .attacker import (
    AttackEvaluation,
    AttackOutcome,
    LinkageAttacker,
    evaluate_attack,
    ground_truth,
)
from .blocking import block, block_size, blocking_values
from .composition import (
    composition_links,
    composition_risk,
    shared_quasi_identifiers,
    unique_links,
)
from .disclosure import (
    Disclosure,
    find_disclosures,
    identifier_positions,
    sentinel_values,
)
from .matching import MatchResult, agreement_score, best_match

__all__ = [
    "AttackEvaluation",
    "AttackOutcome",
    "Disclosure",
    "LinkageAttacker",
    "MatchResult",
    "find_disclosures",
    "identifier_positions",
    "sentinel_values",
    "agreement_score",
    "best_match",
    "block",
    "block_size",
    "blocking_values",
    "composition_links",
    "composition_risk",
    "shared_quasi_identifiers",
    "unique_links",
    "evaluate_attack",
    "ground_truth",
]
