"""Composition (multi-release linkage) analysis.

Financial data exchange rarely stops at one release: the same
respondents appear in several shared views (different surveys, periods,
recipients).  Even when each release is safe in isolation, an attacker
holding two releases can *join them on the shared quasi-identifiers*
and narrow candidates — the composition problem.

:func:`composition_links` joins two (possibly anonymized) microdata DBs
on their common quasi-identifiers under maybe-match semantics (a
suppressed cell on either side is a wildcard) and reports, per row of
the first release, how many rows of the second are compatible.
:func:`composition_risk` turns that into a per-row score (1/|matches|,
0 when nothing links), and :func:`unique_links` lists the dangerous
one-to-one bridges.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import ReproError
from ..model.microdata import MicrodataDB, is_suppressed
from ..model.nulls import MAYBE_MATCH, NullSemantics


def shared_quasi_identifiers(
    first: MicrodataDB, second: MicrodataDB
) -> List[str]:
    """QIs present in both schemas (join attributes)."""
    second_qis = set(second.quasi_identifiers)
    return [a for a in first.quasi_identifiers if a in second_qis]


def composition_links(
    first: MicrodataDB,
    second: MicrodataDB,
    attributes: Optional[Sequence[str]] = None,
    semantics: NullSemantics = MAYBE_MATCH,
) -> List[int]:
    """Per row of ``first``: the number of ``second`` rows compatible
    on the join attributes under the given null semantics."""
    if attributes is None:
        attributes = shared_quasi_identifiers(first, second)
    attributes = list(attributes)
    if not attributes:
        raise ReproError(
            "the two releases share no quasi-identifier to join on"
        )
    # Index the exact (null-free) rows of the second release; null rows
    # are checked one by one (they are the anonymized minority).
    exact_index: Dict[Tuple, int] = defaultdict(int)
    null_rows: List[int] = []
    for index in range(len(second)):
        row = second.rows[index]
        if any(is_suppressed(row[a]) for a in attributes):
            null_rows.append(index)
        else:
            exact_index[tuple(row[a] for a in attributes)] += 1

    counts: List[int] = []
    for index in range(len(first)):
        row = first.rows[index]
        combination = [(a, row[a]) for a in attributes]
        if any(is_suppressed(value) for _, value in combination):
            # Wildcarded probe: fall back to a scan of the second side.
            matches = sum(
                1
                for other in range(len(second))
                if semantics.matches_combination(
                    second.rows[other], combination
                )
            )
        else:
            matches = exact_index.get(
                tuple(value for _, value in combination), 0
            )
            for other in null_rows:
                if semantics.matches_combination(
                    second.rows[other], combination
                ):
                    matches += 1
        counts.append(matches)
    return counts


def composition_risk(
    first: MicrodataDB,
    second: MicrodataDB,
    attributes: Optional[Sequence[str]] = None,
    semantics: NullSemantics = MAYBE_MATCH,
) -> List[float]:
    """1/|compatible second-release rows| per first-release row
    (0 when no row links — nothing to compose)."""
    counts = composition_links(first, second, attributes, semantics)
    return [0.0 if count == 0 else 1.0 / count for count in counts]


def unique_links(
    first: MicrodataDB,
    second: MicrodataDB,
    attributes: Optional[Sequence[str]] = None,
    semantics: NullSemantics = MAYBE_MATCH,
) -> List[int]:
    """Rows of ``first`` that bridge to exactly one row of ``second`` —
    the joins an attacker exploits to stitch releases together."""
    counts = composition_links(first, second, attributes, semantics)
    return [index for index, count in enumerate(counts) if count == 1]
