"""The end-to-end re-identification attacker and its evaluation.

Puts the Section 2.2 attack strategy into action against an identity
oracle: block, match, return the guessed identity with a confidence.
The evaluation harness compares attack success before and after the
anonymization cycle — the empirical validation that suppression /
recoding actually defeats linkage, and that sampling weights predict
attack effectiveness ("tuples with higher weights will be in clusters
with more candidates and thus less likely be identified").
"""

from __future__ import annotations

from typing import Any, Dict, List, NamedTuple, Optional, Sequence

from ..model.hierarchy import DomainHierarchy
from ..model.microdata import MicrodataDB
from ..model.oracle import IdentityOracle
from .blocking import block, blocking_values
from .matching import MatchResult, best_match


class AttackOutcome(NamedTuple):
    """Per-row attack result."""

    row: int
    guessed_identity: Optional[str]
    confidence: float
    cohort_size: int


class AttackEvaluation(NamedTuple):
    """Aggregate attack metrics over a dataset."""

    outcomes: List[AttackOutcome]
    re_identified: int
    attempted: int
    mean_confidence: float
    mean_cohort: float

    @property
    def success_rate(self) -> float:
        return self.re_identified / self.attempted if self.attempted else 0.0


class LinkageAttacker:
    """Blocking + matching over an identity oracle."""

    def __init__(
        self,
        oracle: IdentityOracle,
        hierarchy: Optional[DomainHierarchy] = None,
        confidence_floor: float = 0.0,
    ):
        self.oracle = oracle
        self.hierarchy = hierarchy
        #: Below this confidence the attacker abstains (guess useless).
        self.confidence_floor = confidence_floor

    def attack_row(self, db: MicrodataDB, row: int) -> AttackOutcome:
        values = blocking_values(db, row)
        cohort = block(self.oracle, values)
        match = best_match(
            values,
            cohort,
            list(self.oracle.quasi_identifiers),
            self.hierarchy,
        )
        identity = None
        if (
            match.candidate is not None
            and match.confidence >= self.confidence_floor
        ):
            identity = match.candidate.get(self.oracle.identity_attribute)
        return AttackOutcome(row, identity, match.confidence,
                             match.cohort_size)

    def attack(self, db: MicrodataDB) -> List[AttackOutcome]:
        return [self.attack_row(db, row) for row in range(len(db))]


def ground_truth(
    db: MicrodataDB,
    oracle: IdentityOracle,
    identifier_attribute: str = "Id",
) -> Dict[int, str]:
    """Row -> true identity, via the shared direct identifier (the
    evaluation's privileged knowledge; the attacker never sees it)."""
    identity_of: Dict[Any, str] = {}
    for row in oracle.rows:
        identity_of[row[identifier_attribute]] = row[
            oracle.identity_attribute
        ]
    truth: Dict[int, str] = {}
    for index, row in enumerate(db.rows):
        identity = identity_of.get(row.get(identifier_attribute))
        if identity is not None:
            truth[index] = identity
    return truth


def evaluate_attack(
    attacker: LinkageAttacker,
    db: MicrodataDB,
    truth: Dict[int, str],
    rows: Optional[Sequence[int]] = None,
) -> AttackEvaluation:
    """Run the attack and score it against the ground truth."""
    indices = list(rows) if rows is not None else list(truth)
    outcomes = []
    re_identified = 0
    total_confidence = 0.0
    total_cohort = 0.0
    for index in indices:
        outcome = attacker.attack_row(db, index)
        outcomes.append(outcome)
        total_confidence += outcome.confidence
        total_cohort += outcome.cohort_size
        if (
            outcome.guessed_identity is not None
            and outcome.guessed_identity == truth.get(index)
        ):
            re_identified += 1
    attempted = len(indices)
    return AttackEvaluation(
        outcomes,
        re_identified,
        attempted,
        total_confidence / attempted if attempted else 0.0,
        total_cohort / attempted if attempted else 0.0,
    )
