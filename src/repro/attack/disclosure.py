"""Direct-disclosure oracle over a chase result.

The static leakage pass (``VDL070``) claims: *no identifier value can
surface at an ``@output`` position without passing a declassification
point*.  This module provides the dynamic side of that claim so the
conformance harness can cross-check the two — collect every constant
sitting at an ``@category(..., "identifier")`` position of the input
facts (the *sentinels*), run the chase, and scan the ``@output``
predicates' facts for any of them.  A sentinel surfacing in an output
fact is a direct disclosure; a program the static analysis calls clean
must never produce one.

Values are matched structurally: aggregate results may pack values
into tuples or frozensets (``munion``), so containers are searched
recursively.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Set, Tuple

#: (predicate, 0-based position), matching the flow graph's convention.
Position = Tuple[str, int]


def identifier_positions(program) -> Set[Position]:
    """Positions declared ``@category(..., "identifier")``."""
    from ..vadalog.analysis.flow import parse_category_annotations

    seeds, _ = parse_category_annotations(
        getattr(program, "annotations", ())
    )
    return {seed.key for seed in seeds if seed.level == "identifier"}


def sentinel_values(program, positions=None) -> Set:
    """Constants at identifier positions of the program's own facts."""
    if positions is None:
        positions = identifier_positions(program)
    values: Set = set()
    for fact in program.facts:
        for index, term in enumerate(fact.terms):
            if (fact.predicate, index) not in positions:
                continue
            value = getattr(term, "value", None)
            if value is not None:
                values.add(value)
    return values


def _contains(value, sentinels: Set) -> bool:
    if isinstance(value, (tuple, list, set, frozenset)):
        return any(_contains(item, sentinels) for item in value)
    try:
        return value in sentinels
    except TypeError:  # unhashable — cannot be a stored sentinel
        return False


@dataclass(frozen=True)
class Disclosure:
    """One identifier value surfacing at an output position."""

    predicate: str
    position: int
    value: object

    def __str__(self):
        return (
            f"identifier value {self.value!r} disclosed at "
            f"{self.predicate}[{self.position}]"
        )


def find_disclosures(program, facts: Iterable) -> List[Disclosure]:
    """Scan ``@output`` predicate facts for sentinel identifiers.

    ``facts`` is the chase result's fact set (``result.facts()``);
    returns one :class:`Disclosure` per (predicate, position, value)
    hit, sorted for stable reporting.
    """
    sentinels = sentinel_values(program)
    if not sentinels:
        return []
    outputs = set(program.outputs())
    if not outputs:
        return []
    hits: Set[Disclosure] = set()
    for fact in facts:
        if fact.predicate not in outputs:
            continue
        for index, term in enumerate(fact.terms):
            value = getattr(term, "value", None)
            if value is not None and _contains(value, sentinels):
                hits.add(Disclosure(fact.predicate, index, value))
    return sorted(
        hits, key=lambda d: (d.predicate, d.position, repr(d.value))
    )
