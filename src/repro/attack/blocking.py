"""Blocking — step 1 of the Section 2.2 attack strategy.

"Filter out a set of tuples C from O that match t on the values of
attributes in q̂."  Suppressed (labelled-null) microdata cells carry no
information for the attacker and act as wildcards, which is precisely
how anonymization defeats the attack: "anonymization techniques aim at
making blocking computationally expensive ... with large clusters,
exhaustive comparison is both computationally expensive and yields an
overly uncertain result".
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Sequence

from ..model.microdata import MicrodataDB, is_suppressed
from ..model.oracle import IdentityOracle


def blocking_values(
    db: MicrodataDB,
    row: int,
    attributes: Optional[Sequence[str]] = None,
) -> Dict[str, Any]:
    """The attacker-visible QI values of a row: suppressed cells map to
    None (wildcard); generalized values pass through as-is."""
    attributes = (
        list(attributes) if attributes is not None else db.quasi_identifiers
    )
    values: Dict[str, Any] = {}
    for attribute in attributes:
        cell = db.rows[row][attribute]
        values[attribute] = None if is_suppressed(cell) else cell
    return values


def block(
    oracle: IdentityOracle,
    values: Mapping[str, Any],
) -> List[Dict[str, Any]]:
    """The candidate cohort C ⊆ O for one microdata tuple."""
    return oracle.match_by_quasi_identifiers(values)


def block_size(
    oracle: IdentityOracle,
    db: MicrodataDB,
    row: int,
    attributes: Optional[Sequence[str]] = None,
) -> int:
    """|C| — the blocking selectivity the sampling weight predicts."""
    return len(block(oracle, blocking_values(db, row, attributes)))
