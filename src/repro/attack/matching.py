"""Matching — step 2 of the Section 2.2 attack strategy.

"Choose the tuple r in C that best fits t w.r.t. the other attributes;
return r with an associated probability/score."  Candidates are scored
by agreement over the attributes the blocking step did not pin down
(including generalized values scored fractionally through an optional
hierarchy), and the winner's confidence is its share of the cohort's
total score — a large, homogeneous cohort yields a uniformly low
confidence, making the attack "overly uncertain".
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, NamedTuple, Optional, Sequence

from ..model.hierarchy import DomainHierarchy


class MatchResult(NamedTuple):
    """Best candidate with its confidence and the cohort size."""

    candidate: Optional[Dict[str, Any]]
    confidence: float
    cohort_size: int


def agreement_score(
    target: Mapping[str, Any],
    candidate: Mapping[str, Any],
    attributes: Sequence[str],
    hierarchy: Optional[DomainHierarchy] = None,
) -> float:
    """Fraction of attributes on which the candidate is compatible.

    Exact equality scores 1; a generalized target value (e.g. "North")
    scores 1/(1+levels) against a candidate underneath it in the
    hierarchy; a wildcard (None) scores a neutral 0.5.
    """
    if not attributes:
        return 0.0
    total = 0.0
    for attribute in attributes:
        value = target.get(attribute)
        other = candidate.get(attribute)
        if value is None:
            total += 0.5
        elif value == other:
            total += 1.0
        elif hierarchy is not None and _generalizes(
            hierarchy, attribute, other, value
        ):
            distance = hierarchy.level_of(value) - hierarchy.level_of(other)
            total += 1.0 / (1.0 + max(1, distance))
    return total / len(attributes)


def _generalizes(
    hierarchy: DomainHierarchy, attribute: str, leaf: Any, ancestor: Any
) -> bool:
    current = leaf
    for _ in range(32):  # hierarchy depth bound
        parent = hierarchy.generalize(attribute, current)
        if parent is None:
            return False
        if parent == ancestor:
            return True
        current = parent
    return False


def best_match(
    target: Mapping[str, Any],
    cohort: Sequence[Mapping[str, Any]],
    attributes: Sequence[str],
    hierarchy: Optional[DomainHierarchy] = None,
) -> MatchResult:
    """Score the cohort and return the best candidate with confidence
    = its score share (uniform cohorts → 1/|C|)."""
    if not cohort:
        return MatchResult(None, 0.0, 0)
    scores = [
        agreement_score(target, candidate, attributes, hierarchy)
        for candidate in cohort
    ]
    total = sum(scores)
    best_index = max(range(len(cohort)), key=scores.__getitem__)
    if total <= 0:
        confidence = 1.0 / len(cohort)
    else:
        confidence = scores[best_index] / total
    return MatchResult(dict(cohort[best_index]), confidence, len(cohort))
