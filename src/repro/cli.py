"""Command-line interface.

Sub-commands:

* ``generate`` — synthesize a Figure 6 dataset to CSV
  (``repro generate R25A4W --scale 25 -o out.csv``);
* ``assess`` — preemptive risk evaluation of a CSV dataset
  (``repro assess data.csv --measure k-anonymity --k 2``);
* ``anonymize`` — run the anonymization cycle and write the shared view
  (``repro anonymize data.csv --measure k-anonymity --k 2 -o anon.csv``);
* ``engine`` — evaluate a Vadalog program file and print derived facts
  (``repro engine program.vada --output path``);
* ``explain`` — print compiled join plans, optionally with runtime
  actuals (``repro explain program.vada --analyze --json out.json``);
* ``lint`` — static analysis over Vadalog files or shipped modules
  (``repro lint program.vada --format json --fail-on warning``);
* ``audit`` — the confidentiality audit console over a recorded event
  stream (``repro audit summary --ledger run.jsonl``, ``repro audit
  why 17:city --ledger run.jsonl``, ``repro audit timeline ...``);
* ``events`` — event-stream utilities (``repro events replay
  run.jsonl --format json`` prints the folded summary).

Run as ``python -m repro <command> ...``.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from . import io as repro_io
from . import telemetry
from .anonymize import AnonymizationCycle, LocalSuppression
from .data import generate_dataset
from .model import semantics_by_name
from .risk import measure_by_name


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Vada-SA: reasoning-based statistical disclosure "
        "control (EDBT 2021 reproduction)",
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="enable telemetry and print a metrics snapshot (counters, "
        "timing histograms) to stderr when the command finishes",
    )
    parser.add_argument(
        "--trace-out", metavar="FILE.jsonl", default=None,
        help="enable telemetry and append every finished span to this "
        "JSONL file",
    )
    parser.add_argument(
        "--events-out", metavar="FILE.jsonl", default=None,
        help="enable telemetry and append the unified event stream "
        "(decisions, spans, metric snapshots) to this JSONL file",
    )
    parser.add_argument(
        "--prom-out", metavar="FILE.prom", default=None,
        help="enable telemetry and write the final metrics registry "
        "in Prometheus text exposition format to this file",
    )
    parser.add_argument(
        "--rule-profile", action="store_true",
        help="enable telemetry and print the per-rule cost profile "
        "(hot rules: match/fire time, facts, nulls, strata) to stderr "
        "when the command finishes",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    generate = commands.add_parser(
        "generate", help="synthesize a Figure 6 dataset to CSV"
    )
    generate.add_argument("code", help="dataset code, e.g. R25A4W")
    generate.add_argument("--scale", type=int, default=25,
                          help="row-count divisor (default 25)")
    generate.add_argument("--seed", type=int, default=20210323)
    generate.add_argument("-o", "--output", required=True,
                          help="CSV output path")

    def add_measure_arguments(subparser):
        subparser.add_argument("dataset", help="CSV dataset path")
        subparser.add_argument("--schema", default=None,
                               help="schema JSON (default: sidecar)")
        subparser.add_argument("--measure", default="k-anonymity",
                               help="risk measure plug-in name")
        subparser.add_argument("--k", type=int, default=None,
                               help="k for k-anonymity / SUDA")
        subparser.add_argument("--epsilon", type=float, default=None,
                               help="epsilon for the differential measure")
        subparser.add_argument("--threshold", type=float, default=0.5,
                               help="risk threshold T (default 0.5)")
        subparser.add_argument("--semantics", default="maybe-match",
                               choices=["maybe-match", "standard"])

    assess = commands.add_parser(
        "assess", help="evaluate statistical disclosure risk"
    )
    add_measure_arguments(assess)
    assess.add_argument("--explain", type=int, default=None,
                        metavar="ROW", help="explain one row's score")

    anonymize = commands.add_parser(
        "anonymize", help="run the anonymization cycle"
    )
    add_measure_arguments(anonymize)
    anonymize.add_argument("-o", "--output", required=True,
                           help="anonymized CSV output path")
    anonymize.add_argument("--keep-identifiers", action="store_true",
                           help="do not drop direct identifiers")
    anonymize.add_argument("--trace", action="store_true",
                           help="print every anonymization step")

    report = commands.add_parser(
        "report", help="multi-measure exchange report for a CSV dataset"
    )
    report.add_argument("dataset", help="CSV dataset path")
    report.add_argument("--schema", default=None,
                        help="schema JSON (default: sidecar)")
    report.add_argument("--threshold", type=float, default=0.5)
    report.add_argument("--k", type=int, default=2,
                        help="k for the k-anonymity line")

    engine = commands.add_parser(
        "engine", help="evaluate a Vadalog program file"
    )
    engine.add_argument("program", help="Vadalog source file")
    engine.add_argument("--output", action="append", default=None,
                        metavar="PREDICATE",
                        help="predicate(s) to print (default: all derived)")
    engine.add_argument("--legacy-enumeration", action="store_true",
                        help="evaluate with the legacy recursive "
                        "enumerator instead of compiled join plans "
                        "(same as CHASE_LEGACY_ENUMERATION=1)")
    engine.add_argument("--no-columnar", action="store_true",
                        help="keep every relation on the dict backend "
                        "and evaluate tuple-at-a-time instead of the "
                        "columnar batch executor (same as "
                        "CHASE_COLUMNAR=0)")
    engine.add_argument("--parallelism", type=int, default=None,
                        metavar="N",
                        help="worker count for the parallel chase "
                        "(same as CHASE_PARALLELISM; 0/1 = serial; "
                        "output is bit-identical at any count)")
    engine.add_argument("--check-warded", action="store_true",
                        help="fail if the program is not warded")
    engine.add_argument("--no-preflight", action="store_true",
                        help="skip the static-analysis pre-flight gate "
                        "(escape hatch for programs outside the warded "
                        "fragment)")

    explain = commands.add_parser(
        "explain",
        help="print the compiled join plans of a Vadalog program "
        "(EXPLAIN), optionally with per-step runtime actuals "
        "(EXPLAIN ANALYZE)",
    )
    explain.add_argument("program", help="Vadalog source file")
    explain.add_argument("--analyze", action="store_true",
                         help="run the chase and annotate every plan "
                         "step with actual rows in/out, probe hits and "
                         "wall time")
    explain.add_argument("--json", metavar="FILE.json", default=None,
                         dest="json_out",
                         help="also write the explain document (plus "
                         "memory report with --analyze) as JSON")
    explain.add_argument("--no-columnar", action="store_true",
                         help="analyze the tuple-at-a-time executor "
                         "instead of the columnar batch executor")
    explain.add_argument("--no-preflight", action="store_true",
                         help="skip the static-analysis pre-flight gate")

    lint = commands.add_parser(
        "lint", help="run the static analyzer over Vadalog programs"
    )
    lint.add_argument("paths", nargs="*", metavar="FILE.vada",
                      help="Vadalog source file(s) to lint")
    lint.add_argument("--module", action="append", default=None,
                      metavar="NAME",
                      help="lint a shipped vadalog_programs module by "
                      "name (repeatable)")
    lint.add_argument("--all-modules", action="store_true",
                      help="lint every shipped vadalog_programs module")
    lint.add_argument("--format", default="pretty",
                      choices=["pretty", "json", "sarif"],
                      help="output format (default pretty)")
    lint.add_argument("--fail-on", default="error",
                      choices=["error", "warning", "info"],
                      help="lowest severity that makes the exit code "
                      "non-zero (default error)")
    lint.add_argument("--show-suppressed", action="store_true",
                      help="also print diagnostics suppressed via "
                      "@lint_ignore annotations")

    audit = commands.add_parser(
        "audit",
        help="confidentiality audit console over a recorded event "
        "stream (per-cell why/why-not, risk/utility timeline)",
    )
    audit.add_argument("action", choices=["summary", "why", "timeline"],
                       help="summary: one-page run overview; why: one "
                       "cell's decision story; timeline: per-iteration "
                       "risk/utility trajectory")
    audit.add_argument("cell", nargs="?", default=None,
                       metavar="[DB:]ROW[:ATTRIBUTE]",
                       help="cell to explain (why only); the row is "
                       "the integer component")
    audit.add_argument("--ledger", required=True, metavar="FILE.jsonl",
                       help="event stream written via --events-out or "
                       "telemetry.enable(events_path=...)")
    audit.add_argument("--format", default="text",
                       choices=["text", "json"])
    audit.add_argument("--published", action="store_true",
                       help="with why: explain why the cell was "
                       "published instead (why-not)")
    audit.add_argument("--no-strict-sequence", action="store_true",
                       help="tolerate sequence gaps when folding the "
                       "ledger (e.g. a live file mid-write)")

    events = commands.add_parser(
        "events", help="unified event stream utilities"
    )
    events.add_argument("action", choices=["replay"],
                        help="replay: fold a written stream back into "
                        "its summary (integrity check included)")
    events.add_argument("path", metavar="FILE.jsonl",
                        help="event stream file")
    events.add_argument("--format", default="text",
                        choices=["text", "json"])
    events.add_argument("--no-strict-sequence", action="store_true",
                        help="tolerate sequence gaps (truncated or "
                        "still-growing files)")
    return parser


def _make_measure(args):
    params = {}
    if args.k is not None:
        params["k"] = args.k
    if args.epsilon is not None:
        params["epsilon"] = args.epsilon
    return measure_by_name(args.measure, **params)


def _command_generate(args) -> int:
    db = generate_dataset(args.code, seed=args.seed, scale=args.scale)
    path = repro_io.save_csv(db, args.output)
    print(f"wrote {len(db)} rows to {path} (+ schema sidecar)")
    return 0


def _command_assess(args) -> int:
    db = repro_io.load_csv(args.dataset, schema=args.schema)
    measure = _make_measure(args)
    semantics = semantics_by_name(args.semantics)
    report = measure.assess(db, semantics=semantics)
    risky = report.risky_indices(args.threshold)
    print(f"dataset: {db.name} ({len(db)} rows, "
          f"{len(db.quasi_identifiers)} quasi-identifiers)")
    print(f"measure: {report.measure} {report.parameters}")
    print(f"max risk: {report.max_score():.6g}")
    print(f"risky rows (T={args.threshold}): {len(risky)}")
    if risky[:10]:
        print("first risky rows:", risky[:10])
    if args.explain is not None:
        print(report.explain(args.explain))
    return 1 if risky else 0


def _command_anonymize(args) -> int:
    db = repro_io.load_csv(args.dataset, schema=args.schema)
    measure = _make_measure(args)
    semantics = semantics_by_name(args.semantics)
    cycle = AnonymizationCycle(
        measure,
        LocalSuppression(),
        threshold=args.threshold,
        semantics=semantics,
    )
    result = cycle.run(db)
    print(f"cycle: {result.iterations} iteration(s), "
          f"{len(result.steps)} step(s), "
          f"nulls={result.nulls_injected}, "
          f"information loss={result.information_loss:.2%}, "
          f"converged={result.converged}")
    if args.trace:
        for step in result.steps:
            print("  " + step.explain())
    output_db = (
        result.db if args.keep_identifiers else result.shared_view()
    )
    path = repro_io.save_csv(output_db, args.output)
    print(f"wrote anonymized view to {path}")
    return 0 if result.converged else 2


def _command_report(args) -> int:
    from .framework import VadaSA

    db = repro_io.load_csv(args.dataset, schema=args.schema)
    vada = VadaSA(threshold=args.threshold)
    vada.register(db)
    text = vada.exchange_report(
        db.name, params={"k-anonymity": {"k": args.k}}
    )
    print(text)
    return 0 if "PASS" in text else 1


def _command_engine(args) -> int:
    from .vadalog import Program

    with open(args.program, encoding="utf-8") as handle:
        source = handle.read()
    program = Program.parse(source, name=args.program)
    if args.check_warded:
        report = program.wardedness()
        if not report.is_warded:
            for violation in report.violations():
                print("not warded:", violation, file=sys.stderr)
            return 3
        print("program is warded")
    result = program.run(
        preflight=not args.no_preflight,
        use_plans=False if args.legacy_enumeration else None,
        use_columnar=False if args.no_columnar else None,
        parallelism=args.parallelism,
    )
    if args.rule_profile:
        print("\n--- compiled join plans ---", file=sys.stderr)
        if result.plan_report:
            for rule_name, plans in result.plan_report.items():
                print(f"{rule_name}:", file=sys.stderr)
                for plan_name, steps in plans.items():
                    print(f"  {plan_name}:", file=sys.stderr)
                    for step in steps:
                        print(f"    {step}", file=sys.stderr)
        elif result.plan_report is None:
            print("(no compiled plans — run used the legacy "
                  "enumerator)", file=sys.stderr)
        else:
            print("(no rules — nothing was planned)", file=sys.stderr)
    inputs = {fact.predicate for fact in program.facts}
    predicates = args.output or sorted(
        p for p in result.store.predicates() if p not in inputs
    )
    for predicate in predicates:
        for row in sorted(result.tuples(predicate), key=str):
            rendered = ", ".join(str(value) for value in row)
            print(f"{predicate}({rendered})")
    if result.egd_violations:
        print(f"{len(result.egd_violations)} EGD violation(s):",
              file=sys.stderr)
        for violation in result.egd_violations:
            print("  " + repr(violation), file=sys.stderr)
    return 0


def _command_explain(args) -> int:
    import json

    from .telemetry.inspect import render_explain
    from .vadalog import Program
    from .vadalog.chase import ChaseEngine

    with open(args.program, encoding="utf-8") as handle:
        source = handle.read()
    program = Program.parse(source, name=args.program)
    if args.analyze:
        result = program.run(
            preflight=not args.no_preflight, analyze=True,
            use_columnar=False if args.no_columnar else None,
        )
        doc = result.explain_report or {}
        doc["memory"] = {
            "store": result.store.memory_stats(),
            "provenance": result.provenance.stats(),
        }
    else:
        if not args.no_preflight:
            program.preflight()
        engine = ChaseEngine(program.rules, egds=program.egds)
        doc = engine.explain()
    print(render_explain(doc))
    if args.json_out is not None:
        with open(args.json_out, "w", encoding="utf-8") as handle:
            json.dump(doc, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"explain document written to {args.json_out}",
              file=sys.stderr)
    return 0


def _command_lint(args) -> int:
    import json

    from .errors import ParseError, SafetyError
    from .vadalog import Program
    from .vadalog.analysis import (
        AnalysisReport,
        Diagnostic,
        Span,
        analyze,
        severity_rank,
        to_sarif,
    )
    from .vadalog_programs import PROGRAMS, program_source

    targets: List = []  # (source_name, source_text)
    for path in args.paths or ():
        with open(path, encoding="utf-8") as handle:
            targets.append((path, handle.read()))
    if args.all_modules:
        targets.extend(
            (f"module:{name}", source) for name, source in PROGRAMS.items()
        )
    for name in args.module or ():
        targets.append((f"module:{name}", program_source(name)))
    if not targets:
        print("lint: nothing to lint (give FILE.vada paths, --module "
              "NAME or --all-modules)", file=sys.stderr)
        return 2

    floor = severity_rank(args.fail_on)
    failed = False
    reports = []
    for source_name, source in targets:
        try:
            program = Program.parse(source, name=source_name)
        except (ParseError, SafetyError) as error:
            # Parse/construction failures are reported as the reserved
            # VDL000 so one code covers "did not even reach analysis".
            failed = True
            report = AnalysisReport(
                [Diagnostic(
                    "VDL000",
                    "error",
                    str(error),
                    span=Span(
                        getattr(error, "line", None),
                        getattr(error, "column", None),
                    ),
                    pass_name="parse",
                )],
                source_name=source_name,
            )
        else:
            report = analyze(program, source_name=source_name)
            if any(
                severity_rank(d.severity) >= floor
                for d in report.diagnostics
            ):
                failed = True
        reports.append(report)
        if args.format == "pretty":
            if report.diagnostics or (
                args.show_suppressed and report.suppressed
            ):
                print(report.render(show_suppressed=args.show_suppressed))
            else:
                print(f"{source_name}: clean")
    if args.format == "json":
        print(json.dumps([r.to_dict() for r in reports], indent=2))
    elif args.format == "sarif":
        print(json.dumps(to_sarif(reports), indent=2))
    return 1 if failed else 0


def _command_audit(args) -> int:
    from .audit import (
        AuditLedger,
        render_summary,
        render_timeline,
        render_why,
    )

    try:
        ledger = AuditLedger.replay(
            args.ledger,
            strict_sequence=not args.no_strict_sequence,
        )
    except (OSError, ValueError) as error:
        print(f"error: cannot fold ledger {args.ledger}: {error}",
              file=sys.stderr)
        return 2
    if args.action == "why":
        if args.cell is None:
            print("error: audit why needs a cell "
                  "([DB:]ROW[:ATTRIBUTE])", file=sys.stderr)
            return 2
        try:
            print(render_why(ledger, args.cell, fmt=args.format,
                             published=args.published))
        except ValueError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        return 0
    if args.action == "timeline":
        print(render_timeline(ledger, fmt=args.format))
        return 0
    print(render_summary(ledger, fmt=args.format))
    return 0


def _command_events(args) -> int:
    import json

    from .telemetry import replay

    try:
        summary = replay(
            args.path, strict_sequence=not args.no_strict_sequence
        )
    except (OSError, ValueError) as error:
        print(f"error: cannot replay {args.path}: {error}",
              file=sys.stderr)
        return 2
    if args.format == "json":
        print(json.dumps(summary, indent=2, sort_keys=True))
        return 0
    lines = [f"Event stream {args.path}"]
    lines.append(f"  events: {summary['events']}")
    for event_type, count in sorted(summary["by_type"].items()):
        lines.append(f"    {event_type}: {count}")
    decisions = summary["decisions"]
    if decisions["total"]:
        lines.append(f"  decisions: {decisions['total']}")
        for kind, count in sorted(decisions["by_kind"].items()):
            lines.append(f"    {kind}: {count}")
    audit = summary.get("audit", {})
    if audit.get("cells", {}).get("suppress") or \
            audit.get("cells", {}).get("recode") or \
            audit.get("cells", {}).get("keep"):
        cells = audit["cells"]
        lines.append(
            "  audit: "
            + ", ".join(f"{k} {v}" for k, v in sorted(cells.items()))
            + f" over {audit.get('iterations', 0)} iteration(s)"
        )
    if summary["lifecycle"]:
        lines.append("  lifecycle: " + ", ".join(
            f"{stage} {count}"
            for stage, count in sorted(summary["lifecycle"].items())
        ))
    if summary["spans"]["total"]:
        lines.append(f"  spans: {summary['spans']['total']}")
    print("\n".join(lines))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    handlers = {
        "generate": _command_generate,
        "assess": _command_assess,
        "anonymize": _command_anonymize,
        "report": _command_report,
        "engine": _command_engine,
        "explain": _command_explain,
        "lint": _command_lint,
        "audit": _command_audit,
        "events": _command_events,
    }
    observing = (
        args.profile or args.rule_profile
        or args.trace_out is not None
        or args.events_out is not None
        or args.prom_out is not None
    )
    if observing:
        try:
            telemetry.enable(
                trace_path=args.trace_out,
                events_path=args.events_out,
            )
        except OSError as error:
            print(f"error: cannot open telemetry output: "
                  f"{error.strerror or error}", file=sys.stderr)
            return 2
    try:
        return handlers[args.command](args)
    finally:
        if observing:
            if args.profile:
                print("\n--- telemetry snapshot ---", file=sys.stderr)
                print(
                    telemetry.format_snapshot(telemetry.snapshot()),
                    file=sys.stderr,
                )
            if args.rule_profile:
                print("\n--- rule cost profile ---", file=sys.stderr)
                print(telemetry.rule_profile().render(), file=sys.stderr)
            if args.prom_out is not None:
                try:
                    telemetry.write_prometheus(args.prom_out)
                    print(f"metrics written to {args.prom_out}",
                          file=sys.stderr)
                except OSError as error:
                    print(f"error: cannot write --prom-out: {error}",
                          file=sys.stderr)
            if args.trace_out is not None:
                print(f"trace written to {args.trace_out}",
                      file=sys.stderr)
            if args.events_out is not None:
                print(f"events written to {args.events_out}",
                      file=sys.stderr)
            telemetry.disable()


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
