"""repro.anonymize — smart anonymization (Section 4.3) and the
anonymization cycle (Algorithms 2 and 9)."""

from .adaptive import AdaptiveMethod
from .base import (
    METHOD_REGISTRY,
    AnonymizationMethod,
    AnonymizationStep,
    method_by_name,
    register_method,
)
from .cycle import AnonymizationCycle, CycleResult, GroupTracker, anonymize
from .heuristics import (
    QI_SELECTIONS,
    TUPLE_ORDERINGS,
    FixedOrderSelection,
    MostRiskyFirstSelection,
    QISelection,
    RandomSelection,
    fifo_order,
    less_significant_first,
    most_risky_tuple_first,
    qi_selection_by_name,
    tuple_ordering_by_name,
)
from .metrics import (
    generalization_steps,
    information_loss,
    nulls_injected,
    recoded_cells,
    utility_weighted_loss,
)
from .recoding import GlobalRecoding, RecodeThenSuppress, recode_column
from .suppression import LocalSuppression
from .utility import (
    SUPPRESSED_BUCKET,
    UtilityReport,
    joint_distance,
    marginal_distance,
    total_variation,
    weighted_mean_shift,
)

__all__ = [
    "AdaptiveMethod",
    "AnonymizationCycle",
    "AnonymizationMethod",
    "AnonymizationStep",
    "CycleResult",
    "FixedOrderSelection",
    "GlobalRecoding",
    "GroupTracker",
    "LocalSuppression",
    "METHOD_REGISTRY",
    "MostRiskyFirstSelection",
    "QISelection",
    "QI_SELECTIONS",
    "RandomSelection",
    "RecodeThenSuppress",
    "TUPLE_ORDERINGS",
    "anonymize",
    "fifo_order",
    "generalization_steps",
    "information_loss",
    "less_significant_first",
    "method_by_name",
    "most_risky_tuple_first",
    "nulls_injected",
    "qi_selection_by_name",
    "recode_column",
    "recoded_cells",
    "register_method",
    "tuple_ordering_by_name",
    "utility_weighted_loss",
    "SUPPRESSED_BUCKET",
    "UtilityReport",
    "joint_distance",
    "marginal_distance",
    "total_variation",
    "weighted_mean_shift",
]
