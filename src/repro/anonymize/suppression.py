"""Local suppression with labelled nulls (Algorithm 7).

For a tuple that must be anonymized, one non-null quasi-identifier is
replaced by a fresh labelled null.  Under the maybe-match semantics of
Section 4.3 the nulled cell matches any value, so the tuple joins every
compatible aggregation group — one suppression can lift several tuples
over the k-anonymity bar at once (Figure 5).
"""

from __future__ import annotations

from typing import List

from ..errors import AnonymizationError
from ..model.microdata import MicrodataDB, is_suppressed
from ..vadalog.terms import NullFactory
from .base import AnonymizationMethod, AnonymizationStep, register_method


@register_method
class LocalSuppression(AnonymizationMethod):
    """Replace one quasi-identifier value with a fresh labelled null."""

    name = "local-suppression"

    def applicable_attributes(self, db: MicrodataDB, row: int) -> List[str]:
        values = db.rows[row]
        return [
            attribute
            for attribute in db.quasi_identifiers
            if not is_suppressed(values[attribute])
        ]

    def apply(
        self,
        db: MicrodataDB,
        row: int,
        attribute: str,
        null_factory: NullFactory,
        reason: str = "",
    ) -> AnonymizationStep:
        if attribute not in db.quasi_identifiers:
            raise AnonymizationError(
                f"{attribute!r} is not a quasi-identifier of {db.name!r}"
            )
        old_value = db.rows[row][attribute]
        if is_suppressed(old_value):
            raise AnonymizationError(
                f"cell ({row}, {attribute!r}) is already suppressed"
            )
        null = null_factory.fresh()
        db.with_value(row, attribute, null)
        return AnonymizationStep(
            row, attribute, self.name, old_value, null, reason
        )
