"""Anonymization-method interface and registry (the ``#anonymize``
plug-in of Algorithm 2)."""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Type

from ..errors import AnonymizationError
from ..model.microdata import MicrodataDB
from ..vadalog.terms import NullFactory


class AnonymizationStep:
    """A single applied action, kept for the explainability trace."""

    __slots__ = ("row", "attribute", "method", "old_value", "new_value",
                 "reason")

    def __init__(self, row, attribute, method, old_value, new_value, reason):
        self.row = row
        self.attribute = attribute
        self.method = method
        self.old_value = old_value
        self.new_value = new_value
        self.reason = reason

    def __repr__(self):
        return (
            f"AnonymizationStep(row={self.row}, {self.attribute!r}: "
            f"{self.old_value!r} -> {self.new_value!r} by {self.method})"
        )

    def explain(self) -> str:
        return (
            f"row {self.row}, attribute {self.attribute!r}: replaced "
            f"{self.old_value!r} with {self.new_value!r} ({self.method}) "
            f"because {self.reason}"
        )


class AnonymizationMethod:
    """One-step-at-a-time anonymizers: each call transforms exactly one
    quasi-identifier cell of one tuple (the cycle's greedy minimum)."""

    name = "abstract"

    def applicable_attributes(
        self, db: MicrodataDB, row: int
    ) -> List[str]:
        """Quasi-identifiers of the row this method can still act on."""
        raise NotImplementedError

    def apply(
        self,
        db: MicrodataDB,
        row: int,
        attribute: str,
        null_factory: NullFactory,
        reason: str = "",
    ) -> AnonymizationStep:
        """Transform one cell in place, returning the trace entry."""
        raise NotImplementedError


METHOD_REGISTRY: Dict[str, Type[AnonymizationMethod]] = {}


def register_method(cls: Type[AnonymizationMethod]):
    if cls.name in METHOD_REGISTRY:
        raise AnonymizationError(
            f"anonymization method {cls.name!r} already registered"
        )
    METHOD_REGISTRY[cls.name] = cls
    return cls


def method_by_name(name: str, **parameters) -> AnonymizationMethod:
    try:
        cls = METHOD_REGISTRY[name]
    except KeyError:
        raise AnonymizationError(
            f"unknown anonymization method {name!r}; registered: "
            f"{sorted(METHOD_REGISTRY)}"
        ) from None
    return cls(**parameters)
