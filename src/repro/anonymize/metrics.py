"""Anonymization quality metrics (Section 5.1).

* **Nulls injected** — the count of labelled nulls local suppression
  placed into quasi-identifier cells (Fig. 7a / 7c / 7d y-axis).
* **Information loss** — injected nulls weighed by the maximum number
  of values that could theoretically be removed: the quasi-identifier
  cells of the tuples that were risky w.r.t. the threshold T at the
  start of the cycle (Fig. 7b y-axis).
* **Utility-weighted loss** — an ablation metric: suppressed cells
  weighted by their tuple's sampling weight, normalized by total
  weight; quantifies how well "less significant first" protects the
  statistically relevant tuples.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..model.microdata import MicrodataDB, is_suppressed


def nulls_injected(
    original: MicrodataDB, anonymized: MicrodataDB
) -> int:
    """Labelled nulls present in the anonymized QI cells but not in the
    original's."""
    attributes = anonymized.quasi_identifiers
    before = original.suppressed_cells(attributes)
    after = anonymized.suppressed_cells(attributes)
    return after - before


def recoded_cells(
    original: MicrodataDB, anonymized: MicrodataDB
) -> int:
    """QI cells whose value changed to a non-null (global recoding)."""
    attributes = anonymized.quasi_identifiers
    changed = 0
    for row_before, row_after in zip(original.rows, anonymized.rows):
        for attribute in attributes:
            after = row_after[attribute]
            if is_suppressed(after):
                continue
            if row_before[attribute] != after:
                changed += 1
    return changed


def information_loss(
    original: MicrodataDB,
    anonymized: MicrodataDB,
    initial_risky_count: int,
) -> float:
    """Injected nulls / theoretically removable QI values.

    The denominator is |initially risky tuples| x |quasi-identifiers|:
    removing every QI value of every risky tuple is the (worst-case)
    suppression that trivially satisfies any requirement.
    """
    attributes = anonymized.quasi_identifiers
    removable = initial_risky_count * max(1, len(attributes))
    if removable == 0:
        return 0.0
    return nulls_injected(original, anonymized) / removable


def utility_weighted_loss(
    original: MicrodataDB, anonymized: MicrodataDB
) -> float:
    """Σ (tuple weight × suppressed-QI fraction) / Σ weight."""
    attributes = anonymized.quasi_identifiers
    if not attributes:
        return 0.0
    total_weight = 0.0
    lost = 0.0
    for index, (row_before, row_after) in enumerate(
        zip(original.rows, anonymized.rows)
    ):
        weight = original.weight_of(index)
        total_weight += weight
        newly_suppressed = sum(
            1
            for attribute in attributes
            if is_suppressed(row_after[attribute])
            and not is_suppressed(row_before[attribute])
        )
        lost += weight * newly_suppressed / len(attributes)
    if total_weight <= 0:
        return 0.0
    return lost / total_weight


def generalization_steps(
    original: MicrodataDB,
    anonymized: MicrodataDB,
    hierarchy,
) -> int:
    """Total hierarchy levels climbed by global recoding."""
    attributes = anonymized.quasi_identifiers
    steps = 0
    for row_before, row_after in zip(original.rows, anonymized.rows):
        for attribute in attributes:
            before, after = row_before[attribute], row_after[attribute]
            if is_suppressed(after) or before == after:
                continue
            steps += max(
                0,
                hierarchy.level_of(after) - hierarchy.level_of(before),
            )
    return steps
