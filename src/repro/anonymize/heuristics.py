"""Runtime heuristics (Section 4.4).

Two degrees of freedom in the anonymization cycle are resolved by
pluggable heuristics, mirroring Vadalog routing strategies:

* **Which risky tuple first?**  The paper's greedy answer: *less
  significant first* — sort by sampling weight ascending, so the cycle
  erodes statistically marginal tuples before touching relevant ones.
* **Which quasi-identifier of the tuple first?**  *Most risky first* —
  suppress/recode the attribute whose transformation most reduces the
  tuple's disclosure risk (e.g. in Figure 5a, suppressing Sector of
  tuple 1 lifts its frequency to 5, while suppressing Area would leave
  the sample-unique "Textiles" in place).
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional, Sequence

from ..model.microdata import MicrodataDB
from ..model.nulls import NullSemantics
from ..risk.base import RiskReport

# ---------------------------------------------------------------------------
# Tuple ordering


TupleOrdering = Callable[[MicrodataDB, List[int], RiskReport], List[int]]


def fifo_order(
    db: MicrodataDB, risky: List[int], report: RiskReport
) -> List[int]:
    """Process risky tuples in dataset order."""
    return list(risky)


def less_significant_first(
    db: MicrodataDB, risky: List[int], report: RiskReport
) -> List[int]:
    """Lowest sampling weight first (the paper's default)."""
    return sorted(risky, key=db.weight_of)


def most_risky_tuple_first(
    db: MicrodataDB, risky: List[int], report: RiskReport
) -> List[int]:
    """Highest risk score first (ties broken by weight ascending)."""
    return sorted(
        risky, key=lambda i: (-report.scores[i], db.weight_of(i))
    )


TUPLE_ORDERINGS: Dict[str, TupleOrdering] = {
    "fifo": fifo_order,
    "less-significant-first": less_significant_first,
    "most-risky-first": most_risky_tuple_first,
}


# ---------------------------------------------------------------------------
# Quasi-identifier selection


class QISelection:
    """Chooses which applicable attribute of a risky tuple to act on."""

    name = "abstract"

    def prepare(
        self,
        db: MicrodataDB,
        attributes: Sequence[str],
        semantics: NullSemantics,
    ) -> None:
        """Called once per cycle iteration before any selection."""

    def select(
        self,
        db: MicrodataDB,
        row: int,
        applicable: Sequence[str],
    ) -> str:
        raise NotImplementedError


class FixedOrderSelection(QISelection):
    """Always pick the first applicable attribute in schema order."""

    name = "fixed-order"

    def select(self, db, row, applicable):
        return applicable[0]


class RandomSelection(QISelection):
    """Uniformly random choice — the ablation baseline."""

    name = "random"

    def __init__(self, seed: int = 0):
        self._random = random.Random(seed)

    def select(self, db, row, applicable):
        return self._random.choice(list(applicable))


class MostRiskyFirstSelection(QISelection):
    """Pick the attribute whose suppression yields the largest
    =⊥-group for the tuple (i.e. reduces its risk the most).

    Implemented by computing, per cycle iteration, the match counts of
    every row over each leave-one-out attribute subset — q extra
    near-linear passes instead of a quadratic per-tuple simulation.
    """

    name = "most-risky-first"

    def __init__(self):
        self._counts_without: Dict[str, List[int]] = {}

    def prepare(self, db, attributes, semantics):
        self._counts_without = {}
        attributes = list(attributes)
        for attribute in attributes:
            remaining = [a for a in attributes if a != attribute]
            self._counts_without[attribute] = semantics.match_counts(
                db, remaining
            )

    def select(self, db, row, applicable):
        best = None
        best_count = -1
        for attribute in applicable:
            counts = self._counts_without.get(attribute)
            count = counts[row] if counts is not None else 0
            if count > best_count:
                best_count = count
                best = attribute
        assert best is not None
        return best


QI_SELECTIONS: Dict[str, Callable[[], QISelection]] = {
    "fixed-order": FixedOrderSelection,
    "random": RandomSelection,
    "most-risky-first": MostRiskyFirstSelection,
}


def tuple_ordering_by_name(name: str) -> TupleOrdering:
    try:
        return TUPLE_ORDERINGS[name]
    except KeyError:
        raise ValueError(
            f"unknown tuple ordering {name!r}; available: "
            f"{sorted(TUPLE_ORDERINGS)}"
        ) from None


def qi_selection_by_name(name: str, **kwargs) -> QISelection:
    try:
        factory = QI_SELECTIONS[name]
    except KeyError:
        raise ValueError(
            f"unknown QI selection {name!r}; available: "
            f"{sorted(QI_SELECTIONS)}"
        ) from None
    return factory(**kwargs)
