"""Statistical-utility metrics (desideratum v).

The anonymization logic must be *statistics preserving*: it should
remove the minimum information needed for confidentiality while keeping
the dataset statistically sound.  The information-loss metrics in
:mod:`repro.anonymize.metrics` count what was removed; this module
measures what *survived* — how close the anonymized dataset's
statistics are to the original's:

* :func:`marginal_distance` — per-quasi-identifier total-variation
  distance between the (weighted) value distributions before and after
  anonymization; suppressed cells contribute an explicit "suppressed"
  mass so hiding values is not free.
* :func:`joint_distance` — the same over full QI combinations.
* :func:`weighted_mean_shift` — relative change of the weighted mean
  of a numeric (non-identifying) attribute: survey estimators like the
  Inflation & Growth average are computed over exactly these.
* :class:`UtilityReport` — one-call bundle of the above.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional, Sequence

from ..errors import ReproError
from ..model.microdata import MicrodataDB, is_suppressed

#: Category mass assigned to suppressed cells in distribution metrics.
SUPPRESSED_BUCKET = "<suppressed>"


def _weighted_distribution(
    db: MicrodataDB, attribute: str
) -> Dict[object, float]:
    masses: Dict[object, float] = defaultdict(float)
    total = 0.0
    for index, row in enumerate(db.rows):
        weight = db.weight_of(index)
        value = row[attribute]
        key = SUPPRESSED_BUCKET if is_suppressed(value) else value
        masses[key] += weight
        total += weight
    if total <= 0:
        return {}
    return {key: mass / total for key, mass in masses.items()}


def total_variation(
    before: Dict[object, float], after: Dict[object, float]
) -> float:
    """TV distance between two discrete distributions (0 = identical,
    1 = disjoint)."""
    keys = set(before) | set(after)
    return 0.5 * sum(
        abs(before.get(key, 0.0) - after.get(key, 0.0)) for key in keys
    )


def marginal_distance(
    original: MicrodataDB,
    anonymized: MicrodataDB,
    attribute: str,
) -> float:
    """TV distance of one QI's weighted marginal before vs after."""
    return total_variation(
        _weighted_distribution(original, attribute),
        _weighted_distribution(anonymized, attribute),
    )


def joint_distance(
    original: MicrodataDB,
    anonymized: MicrodataDB,
    attributes: Optional[Sequence[str]] = None,
) -> float:
    """TV distance of the full QI-combination distribution."""
    attributes = (
        list(attributes)
        if attributes is not None
        else original.quasi_identifiers
    )

    def distribution(db: MicrodataDB) -> Dict[object, float]:
        masses: Dict[object, float] = defaultdict(float)
        total = 0.0
        for index, row in enumerate(db.rows):
            weight = db.weight_of(index)
            key = tuple(
                SUPPRESSED_BUCKET if is_suppressed(row[a]) else row[a]
                for a in attributes
            )
            masses[key] += weight
            total += weight
        if total <= 0:
            return {}
        return {key: mass / total for key, mass in masses.items()}

    return total_variation(distribution(original), distribution(anonymized))


def weighted_mean_shift(
    original: MicrodataDB,
    anonymized: MicrodataDB,
    attribute: str,
) -> float:
    """Relative |Δ| of the weighted mean of a numeric attribute.

    Anonymization never touches non-identifying attributes, so this is
    0 unless weights or the attribute itself were altered — it guards
    exactly that invariant for downstream estimators.
    """

    def mean(db: MicrodataDB) -> float:
        total_weight = 0.0
        accumulator = 0.0
        for index, row in enumerate(db.rows):
            value = row[attribute]
            if is_suppressed(value) or not isinstance(
                value, (int, float)
            ):
                continue
            weight = db.weight_of(index)
            accumulator += weight * float(value)
            total_weight += weight
        if total_weight <= 0:
            raise ReproError(
                f"attribute {attribute!r} has no numeric values"
            )
        return accumulator / total_weight

    before = mean(original)
    after = mean(anonymized)
    scale = max(abs(before), 1e-12)
    return abs(after - before) / scale


class UtilityReport:
    """Bundle of utility-preservation metrics for one anonymization."""

    def __init__(
        self,
        original: MicrodataDB,
        anonymized: MicrodataDB,
        numeric_attributes: Sequence[str] = (),
    ):
        self.marginals: Dict[str, float] = {
            attribute: marginal_distance(original, anonymized, attribute)
            for attribute in anonymized.quasi_identifiers
        }
        self.joint = joint_distance(original, anonymized)
        self.mean_shifts: Dict[str, float] = {
            attribute: weighted_mean_shift(
                original, anonymized, attribute
            )
            for attribute in numeric_attributes
        }

    @property
    def worst_marginal(self) -> float:
        return max(self.marginals.values()) if self.marginals else 0.0

    def __repr__(self):
        return (
            f"UtilityReport(joint TV={self.joint:.4f}, worst marginal "
            f"TV={self.worst_marginal:.4f})"
        )
