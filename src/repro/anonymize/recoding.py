"""Global recoding over domain hierarchies (Algorithm 8).

Instead of erasing a value, decrease its granularity: climb the
attribute's type hierarchy one level (City → Region, fine revenue band
→ coarse band...).  The paper notes the technique is "inherently
recursive as multiple hierarchical roll-ups may be needed".

Two flavours are provided:

* :class:`GlobalRecoding` — the Algorithm 8 per-tuple step, pluggable
  into the anonymization cycle exactly like local suppression;
* :func:`recode_column` — the classical *global* application that
  rolls up every occurrence of the attribute across the dataset
  ("can be effectively applied to the entire microdata DB").
"""

from __future__ import annotations

from typing import List, Optional

from ..errors import AnonymizationError
from ..model.hierarchy import DomainHierarchy
from ..model.microdata import MicrodataDB, is_suppressed
from ..vadalog.terms import NullFactory
from .base import AnonymizationMethod, AnonymizationStep, register_method


@register_method
class GlobalRecoding(AnonymizationMethod):
    """Roll one quasi-identifier value up to its hierarchy parent."""

    name = "global-recoding"

    def __init__(self, hierarchy: Optional[DomainHierarchy] = None):
        self.hierarchy = hierarchy or DomainHierarchy()

    def applicable_attributes(self, db: MicrodataDB, row: int) -> List[str]:
        values = db.rows[row]
        return [
            attribute
            for attribute in db.quasi_identifiers
            if not is_suppressed(values[attribute])
            and self.hierarchy.can_generalize(attribute, values[attribute])
        ]

    def apply(
        self,
        db: MicrodataDB,
        row: int,
        attribute: str,
        null_factory: NullFactory,
        reason: str = "",
    ) -> AnonymizationStep:
        old_value = db.rows[row][attribute]
        if is_suppressed(old_value):
            raise AnonymizationError(
                f"cell ({row}, {attribute!r}) is suppressed; nothing to "
                "recode"
            )
        parent = self.hierarchy.generalize(attribute, old_value)
        if parent is None:
            raise AnonymizationError(
                f"no generalization known for {attribute!r} value "
                f"{old_value!r}"
            )
        db.with_value(row, attribute, parent)
        return AnonymizationStep(
            row, attribute, self.name, old_value, parent, reason
        )


@register_method
class RecodeThenSuppress(AnonymizationMethod):
    """Prefer recoding; fall back to suppression when the hierarchy has
    no further roll-up for any value of the tuple.  This is the
    composite behaviour a production deployment runs with: recoding
    preserves more statistics, suppression guarantees progress."""

    name = "recode-then-suppress"

    def __init__(self, hierarchy: Optional[DomainHierarchy] = None):
        from .suppression import LocalSuppression

        self.recoding = GlobalRecoding(hierarchy)
        self.suppression = LocalSuppression()

    def applicable_attributes(self, db: MicrodataDB, row: int) -> List[str]:
        recodable = self.recoding.applicable_attributes(db, row)
        if recodable:
            return recodable
        return self.suppression.applicable_attributes(db, row)

    def apply(self, db, row, attribute, null_factory, reason=""):
        values = db.rows[row]
        if not is_suppressed(values[attribute]) and (
            self.recoding.hierarchy.can_generalize(
                attribute, values[attribute]
            )
        ):
            return self.recoding.apply(
                db, row, attribute, null_factory, reason
            )
        return self.suppression.apply(
            db, row, attribute, null_factory, reason
        )


def recode_column(
    db: MicrodataDB,
    attribute: str,
    hierarchy: DomainHierarchy,
) -> int:
    """Roll up *every* value of ``attribute`` one hierarchy level.

    Returns the number of cells changed.  Cells without a known
    roll-up (or suppressed cells) are left untouched.
    """
    if attribute not in db.schema.categories:
        raise AnonymizationError(f"unknown attribute {attribute!r}")
    changed = 0
    for index, row in enumerate(db.rows):
        value = row[attribute]
        if is_suppressed(value):
            continue
        parent = hierarchy.generalize(attribute, value)
        if parent is not None:
            db.with_value(index, attribute, parent)
            changed += 1
    return changed
