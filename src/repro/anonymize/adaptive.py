"""Adaptive action selection (Section 4's "the overall statistical
disclosure control process is a reasoning task itself, which ...
adaptively chooses the actions to be performed").

:class:`AdaptiveMethod` wraps a *preference list* of anonymization
methods and escalates per tuple: it tries the most statistics-
preserving action first (global recoding — which keeps a coarser but
real value) and falls back to the next method once the previous one has
no applicable attribute left **or** has already been applied
``patience`` times to the tuple without the tuple leaving the risky
set.  Unlike :class:`~repro.anonymize.recoding.RecodeThenSuppress`
(which decides per cell), the adaptive method tracks per-tuple history
across cycle iterations, so a tuple that keeps coming back risky after
several roll-ups gets suppressed instead of being generalized into
uselessness.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional, Sequence

from ..errors import AnonymizationError
from ..model.hierarchy import DomainHierarchy
from ..model.microdata import MicrodataDB
from ..vadalog.terms import NullFactory
from .base import AnonymizationMethod, AnonymizationStep, register_method
from .recoding import GlobalRecoding
from .suppression import LocalSuppression


@register_method
class AdaptiveMethod(AnonymizationMethod):
    """Escalating method chain with per-tuple patience."""

    name = "adaptive"

    def __init__(
        self,
        hierarchy: Optional[DomainHierarchy] = None,
        methods: Optional[Sequence[AnonymizationMethod]] = None,
        patience: int = 2,
    ):
        if methods is None:
            methods = [GlobalRecoding(hierarchy), LocalSuppression()]
        if not methods:
            raise AnonymizationError("adaptive method needs >= 1 method")
        if patience < 1:
            raise AnonymizationError(
                f"patience must be >= 1, got {patience}"
            )
        self.methods = list(methods)
        self.patience = patience
        # row -> (current method index, applications at that level)
        self._state: Dict[int, List[int]] = defaultdict(lambda: [0, 0])

    def _level_for(self, db: MicrodataDB, row: int) -> Optional[int]:
        """The method level to use for the row, advancing past
        exhausted or out-of-patience levels."""
        state = self._state[row]
        last_level = len(self.methods) - 1
        while state[0] < len(self.methods):
            method = self.methods[state[0]]
            # Patience bounds every level except the last: the terminal
            # method must stay available or risky tuples get stranded.
            if state[0] < last_level and state[1] >= self.patience:
                state[0] += 1
                state[1] = 0
                continue
            if method.applicable_attributes(db, row):
                return state[0]
            state[0] += 1
            state[1] = 0
        return None

    def applicable_attributes(self, db: MicrodataDB, row: int) -> List[str]:
        level = self._level_for(db, row)
        if level is None:
            return []
        return self.methods[level].applicable_attributes(db, row)

    def apply(
        self,
        db: MicrodataDB,
        row: int,
        attribute: str,
        null_factory: NullFactory,
        reason: str = "",
    ) -> AnonymizationStep:
        level = self._level_for(db, row)
        if level is None:
            raise AnonymizationError(
                f"no adaptive action left for row {row}"
            )
        method = self.methods[level]
        if attribute not in method.applicable_attributes(db, row):
            # The cycle's QI heuristic picked an attribute the current
            # level cannot act on (e.g. no roll-up known): escalate for
            # this application only.
            for fallback in self.methods[level + 1 :]:
                if attribute in fallback.applicable_attributes(db, row):
                    method = fallback
                    break
            else:
                raise AnonymizationError(
                    f"attribute {attribute!r} not actionable for row "
                    f"{row} at any level"
                )
        self._state[row][1] += 1
        step = method.apply(db, row, attribute, null_factory, reason)
        return AnonymizationStep(
            step.row,
            step.attribute,
            f"{self.name}:{step.method}",
            step.old_value,
            step.new_value,
            step.reason,
        )

    def reset(self) -> None:
        """Forget per-tuple history (for reusing the instance)."""
        self._state.clear()
