"""The anonymization cycle (Algorithms 2 and 9).

Iterative interplay of disclosure-risk evaluation and anonymization
until every tuple's risk is within the threshold T:

1. assess risk for all tuples (optionally lifted to business-knowledge
   clusters, Algorithm 9);
2. pick the risky tuples (R > T) that still have actionable
   quasi-identifiers;
3. order them with the tuple heuristic (*less significant first*);
4. for each, apply **one** anonymization step — the greedy minimum —
   to the quasi-identifier chosen by the QI heuristic (*most risky
   first*);
5. repeat until no tuple violates T.

Mirroring the monotonic-aggregation semantics that lets an anonymized
tuple supersede its original *within* an iteration, the cycle keeps an
incremental :class:`GroupTracker`: before acting on a tuple it rechecks
whether earlier suppressions in the same pass already pushed it under
the threshold, which is what keeps the injected-null counts minimal
(Fig. 7a).  Measures that cannot be rechecked from group statistics
alone (SUDA) simply skip the recheck.

Every applied step carries the full motivation (the body binding of
Rule 2: tuple id, risk score, group evidence) in the result's trace —
the paper's explainability guarantee.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple, Union

from .. import telemetry
from ..errors import AnonymizationError
from ..model.microdata import MicrodataDB, is_suppressed
from ..model.nulls import (
    MAYBE_MATCH,
    MaybeMatchSemantics,
    NullSemantics,
    StandardSemantics,
)
from ..risk.base import RiskMeasure, RiskReport
from ..risk.cluster import propagate_over_clusters
from ..vadalog.terms import NullFactory
from .base import AnonymizationMethod, AnonymizationStep
from .heuristics import (
    QISelection,
    TupleOrdering,
    qi_selection_by_name,
    tuple_ordering_by_name,
)
from . import metrics as _metrics


class GroupTracker:
    """Incremental =⊥-group statistics under suppression/recoding.

    Maintains, per quasi-identifier combination, the exact count and
    weight sum of null-free rows, plus the set of null-carrying rows,
    so a single row's current group frequency can be rechecked in
    O(|null rows|) instead of a full pass.
    """

    def __init__(
        self,
        db: MicrodataDB,
        attributes: Sequence[str],
        semantics: NullSemantics,
    ):
        self.db = db
        self.attributes = list(attributes)
        self.semantics = semantics
        self.weights = db.weights()
        self.counts: Counter = Counter()
        self.weight_sums: Dict[Tuple, float] = defaultdict(float)
        self.null_rows: Set[int] = set()
        for index in range(len(db)):
            key = self._key(index)
            if key is None:
                self.null_rows.add(index)
            else:
                self.counts[key] += 1
                self.weight_sums[key] += self.weights[index]

    def _key(self, index: int) -> Optional[Tuple]:
        row = self.db.rows[index]
        values = []
        for attribute in self.attributes:
            value = row[attribute]
            if is_suppressed(value):
                if isinstance(self.semantics, StandardSemantics):
                    values.append(value)  # a null is just another value
                else:
                    return None
            else:
                values.append(value)
        return tuple(values)

    def stats(self, index: int) -> Tuple[int, float]:
        """Current (=⊥-match count, matched weight sum) for a row."""
        key = self._key(index)
        if key is not None:
            count = self.counts[key]
            weight_sum = self.weight_sums[key]
            for other in self.null_rows:
                if self._row_matches(other, index):
                    count += 1
                    weight_sum += self.weights[other]
            return count, weight_sum
        # Null-carrying row under maybe-match: full scan.
        row = self.db.rows[index]
        combination = [(a, row[a]) for a in self.attributes]
        count = 0
        weight_sum = 0.0
        for other in range(len(self.db)):
            if self.semantics.matches_combination(
                self.db.rows[other], combination
            ):
                count += 1
                weight_sum += self.weights[other]
        return count, weight_sum

    def _row_matches(self, data_index: int, query_index: int) -> bool:
        query = self.db.rows[query_index]
        combination = [(a, query[a]) for a in self.attributes]
        return self.semantics.matches_combination(
            self.db.rows[data_index], combination
        )

    def before_change(self, index: int) -> Optional[Tuple]:
        """Capture the row's key before the method mutates it."""
        return self._key(index)

    def after_change(self, index: int, old_key: Optional[Tuple]) -> None:
        """Re-register the row after a suppression or recoding."""
        if old_key is not None:
            self.counts[old_key] -= 1
            self.weight_sums[old_key] -= self.weights[index]
            if self.counts[old_key] <= 0:
                del self.counts[old_key]
                self.weight_sums.pop(old_key, None)
        else:
            self.null_rows.discard(index)
        new_key = self._key(index)
        if new_key is None:
            self.null_rows.add(index)
        else:
            self.counts[new_key] += 1
            self.weight_sums[new_key] += self.weights[index]


class CycleResult:
    """Outcome of the anonymization cycle, with full trace."""

    def __init__(
        self,
        original: MicrodataDB,
        anonymized: MicrodataDB,
        steps: List[AnonymizationStep],
        reports: List[RiskReport],
        initial_risky: List[int],
        iterations: int,
        converged: bool,
        null_factory: NullFactory,
    ):
        self.original = original
        self.db = anonymized
        self.steps = steps
        self.reports = reports
        self.initial_risky = initial_risky
        self.iterations = iterations
        self.converged = converged
        self.null_factory = null_factory

    @property
    def initial_report(self) -> RiskReport:
        return self.reports[0]

    @property
    def final_report(self) -> RiskReport:
        return self.reports[-1]

    @property
    def nulls_injected(self) -> int:
        return _metrics.nulls_injected(self.original, self.db)

    @property
    def recoded_cells(self) -> int:
        return _metrics.recoded_cells(self.original, self.db)

    @property
    def information_loss(self) -> float:
        return _metrics.information_loss(
            self.original, self.db, len(self.initial_risky)
        )

    @property
    def utility_weighted_loss(self) -> float:
        return _metrics.utility_weighted_loss(self.original, self.db)

    def explain_row(self, row: int) -> str:
        """The full anonymization story of one tuple."""
        lines = [f"tuple {row}:"]
        initial = self.initial_report
        lines.append("  initial " + initial.explain(row))
        for step in self.steps:
            if step.row == row:
                lines.append("  " + step.explain())
        final = self.final_report
        lines.append("  final " + final.explain(row))
        return "\n".join(lines)

    def shared_view(self) -> MicrodataDB:
        """The dataset as handed to the counterparty: identifiers
        dropped (Section 4.1)."""
        return self.db.drop_identifiers()

    def __repr__(self):
        return (
            f"CycleResult({self.db.name!r}: {len(self.steps)} steps in "
            f"{self.iterations} iteration(s), nulls={self.nulls_injected}, "
            f"converged={self.converged})"
        )


class AnonymizationCycle:
    """Configurable driver for Algorithm 2 / Algorithm 9."""

    def __init__(
        self,
        measure: RiskMeasure,
        method: AnonymizationMethod,
        threshold: float = 0.5,
        semantics: NullSemantics = MAYBE_MATCH,
        tuple_ordering: Union[str, TupleOrdering] = "less-significant-first",
        qi_selection: Union[str, QISelection] = "most-risky-first",
        max_iterations: int = 200,
        clusters: Optional[Sequence[Set[int]]] = None,
        recheck: bool = True,
        attributes: Optional[Sequence[str]] = None,
    ):
        if not 0 <= threshold <= 1:
            raise AnonymizationError(
                f"threshold must be in [0, 1], got {threshold}"
            )
        self.measure = measure
        self.method = method
        self.threshold = threshold
        self.semantics = semantics
        self.tuple_ordering = (
            tuple_ordering_by_name(tuple_ordering)
            if isinstance(tuple_ordering, str)
            else tuple_ordering
        )
        self.qi_selection = (
            qi_selection_by_name(qi_selection)
            if isinstance(qi_selection, str)
            else qi_selection
        )
        self.max_iterations = max_iterations
        self.clusters = list(clusters) if clusters is not None else None
        self.recheck = recheck
        self.attributes = list(attributes) if attributes else None

    # -- main loop -----------------------------------------------------------

    def run(self, db: MicrodataDB) -> CycleResult:
        with telemetry.span(
            "cycle.run", db=db.name, measure=type(self.measure).__name__,
            method=type(self.method).__name__, threshold=self.threshold,
        ) as cycle_span:
            result = self._run(db)
            cycle_span.set(
                iterations=result.iterations,
                steps=len(result.steps),
                converged=result.converged,
            )
        if telemetry.state.enabled:
            registry = telemetry.state.registry
            registry.counter("cycle.runs").inc()
            registry.counter("cycle.iterations").inc(result.iterations)
            registry.counter("cycle.suppression_steps").inc(
                len(result.steps)
            )
            self._record_outcome(result)
        return result

    def _run(self, db: MicrodataDB) -> CycleResult:
        original = db.copy()
        working = db.copy()
        null_factory = NullFactory()
        steps: List[AnonymizationStep] = []
        reports: List[RiskReport] = []
        initial_risky: List[int] = []
        converged = False
        attributes = self.attributes or working.quasi_identifiers

        iteration = 0
        while iteration < self.max_iterations:
            iteration += 1
            report = self._assess(working)
            reports.append(report)
            risky = report.risky_indices(self.threshold)
            if iteration == 1:
                initial_risky = list(risky)
            if not risky:
                if telemetry.state.enabled:
                    self._record_iteration(
                        working, report, iteration, 0, 0, 0, 0, 0,
                    )
                converged = True
                break
            actionable = [
                index
                for index in risky
                if self.method.applicable_attributes(working, index)
            ]
            if not actionable:
                # Risky tuples remain but nothing can be transformed.
                if telemetry.state.enabled:
                    self._record_iteration(
                        working, report, iteration, len(risky), 0,
                        0, 0, 0,
                    )
                break
            ordered = self.tuple_ordering(working, actionable, report)
            self.qi_selection.prepare(working, attributes, self.semantics)
            tracker = (
                GroupTracker(working, attributes, self.semantics)
                if self.recheck and self._supports_recheck()
                else None
            )
            acted = 0
            suppressed_now = 0
            recoded_now = 0
            kept_now = 0
            observing = (
                telemetry.state.enabled
                and telemetry.state.events is not None
            )
            for row in ordered:
                if tracker is not None:
                    count, weight_sum = tracker.stats(row)
                    safe = self.measure.safe_from_group(
                        count, weight_sum, self.threshold
                    )
                    if safe:
                        kept_now += 1
                        if telemetry.state.enabled:
                            telemetry.state.registry.counter(
                                "cycle.recheck_skips"
                            ).inc()
                            telemetry.state.registry.counter(
                                "sdc.cells_kept"
                            ).inc()
                        if observing:
                            # A "keep": the tuple was risky when the
                            # pass started but an earlier step in the
                            # same pass already pushed its group under
                            # the threshold.
                            verdict = report.verdict(row, self.threshold)
                            telemetry.state.events.emit(
                                "decision",
                                kind="keep",
                                db=working.name,
                                row=row,
                                method=self.method.name,
                                measure=report.measure,
                                iteration=iteration,
                                score=verdict.score,
                                threshold=self.threshold,
                                detail=verdict.detail,
                                qis=list(attributes),
                                evidence=(
                                    f"group regrew to {count} member(s)"
                                    f" (weight {weight_sum:.6g}) within"
                                    f" iteration {iteration}"
                                ),
                            )
                        continue  # an earlier step already fixed it
                applicable = self.method.applicable_attributes(working, row)
                if not applicable:
                    continue
                attribute = self.qi_selection.select(working, row, applicable)
                qi_values_before = (
                    [str(v) for v in working.qi_values(row, attributes)]
                    if observing else None
                )
                old_key = (
                    tracker.before_change(row) if tracker is not None else None
                )
                step = self.method.apply(
                    working,
                    row,
                    attribute,
                    null_factory,
                    reason=report.explain(row),
                )
                steps.append(step)
                acted += 1
                action = (
                    "suppress" if is_suppressed(step.new_value)
                    else "recode"
                )
                if action == "suppress":
                    suppressed_now += 1
                else:
                    recoded_now += 1
                if telemetry.state.enabled:
                    telemetry.state.registry.counter(
                        "sdc.cells_suppressed" if action == "suppress"
                        else "sdc.cells_recoded"
                    ).inc()
                if observing:
                    # The audit-stream form of the paper's Rule 2
                    # motivation: which cell, by which method, under
                    # which measure, in which pass, and why — the
                    # verdict carries the threshold comparison so the
                    # audit ledger can explain the decision without
                    # the RiskReport.
                    verdict = report.verdict(row, self.threshold)
                    telemetry.state.events.emit(
                        "decision",
                        kind=action,
                        db=working.name,
                        row=row,
                        attribute=attribute,
                        method=self.method.name,
                        measure=report.measure,
                        iteration=iteration,
                        old=step.old_value,
                        new=step.new_value,
                        reason=step.reason,
                        score=verdict.score,
                        threshold=self.threshold,
                        detail=verdict.detail,
                        qis=list(attributes),
                        qi_values=qi_values_before,
                    )
                if tracker is not None:
                    tracker.after_change(row, old_key)
            if telemetry.state.enabled:
                self._record_iteration(
                    working, report, iteration, len(risky), acted,
                    suppressed_now, recoded_now, kept_now,
                )
            if acted == 0:
                # Recheck filtered everything: risk assessment and the
                # tracker agree nothing more is needed.
                converged = True
                break

        if not converged:
            final = self._assess(working)
            reports.append(final)
            converged = not final.risky_indices(self.threshold)
        elif not reports or reports[-1].risky_indices(self.threshold):
            final = self._assess(working)
            reports.append(final)
            converged = not final.risky_indices(self.threshold)

        return CycleResult(
            original,
            working,
            steps,
            reports,
            initial_risky,
            iteration,
            converged,
            null_factory,
        )

    # -- helpers --------------------------------------------------------------

    def _record_iteration(
        self,
        db: MicrodataDB,
        report: RiskReport,
        iteration: int,
        risky: int,
        acted: int,
        suppressed: int,
        recoded: int,
        kept: int,
    ) -> None:
        """Per-pass risk/utility time series: gauges track the latest
        iteration (scrapeable mid-run via /metrics, like the chase
        heartbeat), the per-measure histogram accumulates the score
        distribution across passes, and a ``cycle_iteration`` event
        pins the whole point into the audit stream."""
        registry = telemetry.state.registry
        measure = report.measure
        max_score = report.max_score()
        mean_score = report.mean_score()
        registry.gauge("sdc.iteration").set(iteration)
        registry.gauge("sdc.risk.max", measure=measure).set(max_score)
        registry.gauge("sdc.risk.mean", measure=measure).set(mean_score)
        registry.gauge("sdc.risk.risky", measure=measure).set(risky)
        histogram = registry.histogram("sdc.risk.score", measure=measure)
        for index in report.risky_indices(self.threshold):
            histogram.observe(report.scores[index])
        if telemetry.state.events is not None:
            telemetry.state.events.emit(
                "cycle_iteration",
                db=db.name,
                measure=measure,
                iteration=iteration,
                risky=risky,
                max_score=max_score,
                mean_score=mean_score,
                threshold=self.threshold,
                acted=acted,
                suppressed=suppressed,
                recoded=recoded,
                kept=kept,
            )

    def _record_outcome(self, result: CycleResult) -> None:
        """End-of-run utility-vs-risk gauges plus the ``cycle_summary``
        event the audit ledger folds as the cycle's outcome."""
        registry = telemetry.state.registry
        final = result.final_report
        attributes = result.db.quasi_identifiers
        qi_cells = len(result.db) * len(attributes)
        nulls = result.nulls_injected
        recoded = result.recoded_cells
        published = qi_cells - nulls - recoded
        registry.gauge("sdc.cells_published").set(published)
        registry.gauge("sdc.utility.nulls_injected").set(nulls)
        registry.gauge("sdc.utility.recoded_cells").set(recoded)
        registry.gauge("sdc.utility.information_loss").set(
            result.information_loss
        )
        registry.gauge("sdc.utility.weighted_loss").set(
            result.utility_weighted_loss
        )
        if telemetry.state.events is not None:
            telemetry.state.events.emit(
                "cycle_summary",
                db=result.db.name,
                measure=final.measure,
                method=self.method.name,
                threshold=self.threshold,
                iterations=result.iterations,
                converged=result.converged,
                steps=len(result.steps),
                initial_risky=len(result.initial_risky),
                final_risky=len(
                    final.risky_indices(self.threshold)
                ),
                final_max_score=final.max_score(),
                final_mean_score=final.mean_score(),
                nulls_injected=nulls,
                recoded_cells=recoded,
                published_cells=published,
                information_loss=result.information_loss,
                utility_weighted_loss=result.utility_weighted_loss,
                qis=list(attributes),
            )

    def _assess(self, db: MicrodataDB) -> RiskReport:
        with telemetry.profile_block(
            "cycle.assess", measure=type(self.measure).__name__
        ):
            report = self.measure.assess(
                db, semantics=self.semantics, attributes=self.attributes
            )
            if self.clusters:
                report = propagate_over_clusters(report, self.clusters)
        return report

    def _supports_recheck(self) -> bool:
        # Cluster-level risk couples tuples; a per-row group recheck
        # would wrongly mark a tuple safe while its cluster is not.
        if self.clusters:
            return False
        probe = self.measure.safe_from_group(1, 1.0, self.threshold)
        return probe is not None


def anonymize(
    db: MicrodataDB,
    measure: RiskMeasure,
    method: AnonymizationMethod,
    **kwargs,
) -> CycleResult:
    """One-call convenience wrapper around :class:`AnonymizationCycle`."""
    return AnonymizationCycle(measure, method, **kwargs).run(db)
