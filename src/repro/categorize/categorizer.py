"""Attribute categorization (Algorithm 1).

Before a microdata DB enters the anonymization cycle, each attribute
must be categorized as identifier / quasi-identifier / non-identifying
/ weight.  Algorithm 1 does this by *recursive application of
experience*:

1. every attribute must get some category (existential Rule 1 — in the
   native implementation, unresolved attributes surface as ``pending``
   instead of carrying a labelled null);
2. an attribute sufficiently similar (``∼``) to an experience-base
   entry borrows its category (Rule 2);
3. consolidated decisions feed back into the experience base (Rule 3)
   so they aid later decisions — optional, because "the user may
   consider a decision to be use-case specific" (human in the loop);
4. one category per attribute is enforced by an EGD (Rule 4);
   conflicting borrowings become :class:`CategoryConflict` entries for
   manual inspection rather than silent choices.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..errors import CategorizationError
from ..model.metadata import ExperienceBase, MetadataDictionary
from ..model.schema import AttributeCategory
from .similarity import SimilarityFunction, combined, similarity_by_name


class CategoryConflict:
    """An EGD (Rule 4) violation: two experience entries with different
    categories both match the attribute at the same similarity level."""

    __slots__ = ("attribute", "candidates")

    def __init__(
        self,
        attribute: str,
        candidates: List[Tuple[str, AttributeCategory, float]],
    ):
        self.attribute = attribute
        self.candidates = candidates

    def __repr__(self):
        options = ", ".join(
            f"{name}->{category.value}@{score:.2f}"
            for name, category, score in self.candidates
        )
        return f"CategoryConflict({self.attribute!r}: {options})"


class CategorizationResult:
    """Assigned categories, unresolved attributes and conflicts."""

    def __init__(
        self,
        assigned: Dict[str, AttributeCategory],
        pending: List[str],
        conflicts: List[CategoryConflict],
        evidence: Dict[str, Tuple[str, float]],
    ):
        self.assigned = assigned
        self.pending = pending
        self.conflicts = conflicts
        #: attribute -> (experience entry it borrowed from, similarity)
        self.evidence = evidence

    @property
    def is_complete(self) -> bool:
        return not self.pending and not self.conflicts

    def explain(self, attribute: str) -> str:
        if attribute in self.assigned:
            source, score = self.evidence.get(attribute, ("manual", 1.0))
            return (
                f"{attribute!r} categorized as "
                f"{self.assigned[attribute].value} by similarity "
                f"{score:.2f} to experience entry {source!r}"
            )
        for conflict in self.conflicts:
            if conflict.attribute == attribute:
                return f"{attribute!r} is conflicted: {conflict!r}"
        return f"{attribute!r} is pending manual categorization"

    def __repr__(self):
        return (
            f"CategorizationResult({len(self.assigned)} assigned, "
            f"{len(self.pending)} pending, {len(self.conflicts)} "
            "conflict(s))"
        )


class AttributeCategorizer:
    """The native executor of Algorithm 1."""

    def __init__(
        self,
        experience: Optional[ExperienceBase] = None,
        similarity: Union[str, SimilarityFunction] = "combined",
        threshold: float = 0.55,
        consolidate: bool = True,
    ):
        self.experience = experience or ExperienceBase()
        self.similarity = (
            similarity_by_name(similarity)
            if isinstance(similarity, str)
            else similarity
        )
        if not 0 < threshold <= 1:
            raise CategorizationError(
                f"similarity threshold must be in (0, 1], got {threshold}"
            )
        self.threshold = threshold
        #: Rule 3 switch: feed consolidated decisions back into ExpBase.
        self.consolidate = consolidate

    def categorize(
        self, attributes: Sequence[str]
    ) -> CategorizationResult:
        """Assign a category to each attribute name."""
        assigned: Dict[str, AttributeCategory] = {}
        evidence: Dict[str, Tuple[str, float]] = {}
        conflicts: List[CategoryConflict] = []
        pending: List[str] = []

        # Recursive application of experience (Rules 2+3): keep passing
        # over unresolved attributes while consolidation adds entries.
        remaining = list(attributes)
        while remaining:
            progressed = False
            still_remaining: List[str] = []
            for attribute in remaining:
                outcome = self._match(attribute)
                if isinstance(outcome, CategoryConflict):
                    conflicts.append(outcome)
                    progressed = True
                elif outcome is not None:
                    source, category, score = outcome
                    assigned[attribute] = category
                    evidence[attribute] = (source, score)
                    if self.consolidate and attribute not in self.experience:
                        self.experience.know(attribute, category)
                    progressed = True
                else:
                    still_remaining.append(attribute)
            remaining = still_remaining
            if not progressed:
                break
        pending = remaining
        return CategorizationResult(assigned, pending, conflicts, evidence)

    def categorize_dictionary(
        self, dictionary: MetadataDictionary, micro_db: str
    ) -> CategorizationResult:
        """Categorize a registered microdata DB, writing the derived
        Category facts back into the metadata dictionary."""
        names = [entry.name for entry in dictionary.attributes(micro_db)]
        result = self.categorize(names)
        for attribute, category in result.assigned.items():
            dictionary.set_category(micro_db, attribute, category)
        return result

    def resolve(
        self,
        result: CategorizationResult,
        attribute: str,
        category: AttributeCategory,
    ) -> None:
        """Human-in-the-loop resolution of a pending/conflicted
        attribute; the decision is consolidated into the experience
        base when Rule 3 is enabled."""
        result.assigned[attribute] = category
        result.evidence[attribute] = ("manual", 1.0)
        result.pending = [a for a in result.pending if a != attribute]
        result.conflicts = [
            c for c in result.conflicts if c.attribute != attribute
        ]
        if self.consolidate:
            self.experience.know(attribute, category)

    # -- Rule 2 ----------------------------------------------------------------

    def _match(
        self, attribute: str
    ) -> Union[None, CategoryConflict, Tuple[str, AttributeCategory, float]]:
        best_score = 0.0
        best: List[Tuple[str, AttributeCategory, float]] = []
        for known, category in self.experience.entries().items():
            score = self.similarity(attribute, known)
            if score < self.threshold:
                continue
            if score > best_score + 1e-12:
                best_score = score
                best = [(known, category, score)]
            elif abs(score - best_score) <= 1e-12:
                best.append((known, category, score))
        if not best:
            return None
        categories = {category for _, category, _ in best}
        if len(categories) > 1:
            return CategoryConflict(attribute, best)
        source, category, score = best[0]
        return source, category, score
