"""repro.categorize — attribute categorization (Algorithm 1)."""

from .categorizer import (
    AttributeCategorizer,
    CategorizationResult,
    CategoryConflict,
)
from .similarity import (
    SIMILARITIES,
    SimilarityFunction,
    combined,
    exact,
    jaccard,
    levenshtein,
    levenshtein_distance,
    normalized_exact,
    similarity_by_name,
)

__all__ = [
    "AttributeCategorizer",
    "CategorizationResult",
    "CategoryConflict",
    "SIMILARITIES",
    "SimilarityFunction",
    "combined",
    "exact",
    "jaccard",
    "levenshtein",
    "levenshtein_distance",
    "normalized_exact",
    "similarity_by_name",
]
