"""Pluggable attribute-name similarity functions (the ``∼`` of
Algorithm 1, Rule 2).

Whether a microdata attribute "is sufficiently similar to another
attribute of the experience base" is decided by a similarity function
over attribute names (and, in richer deployments, descriptions).  We
ship the usual string measures; any callable ``(a, b) -> float`` in
``[0, 1]`` can be plugged in.
"""

from __future__ import annotations

import re
from typing import Callable, Dict, Iterable, List, Set

#: A similarity function returns a score in [0, 1].
SimilarityFunction = Callable[[str, str], float]


def _normalize(name: str) -> str:
    """Lowercase, strip punctuation/abbreviation dots, collapse spaces."""
    cleaned = re.sub(r"[^0-9a-zA-Z]+", " ", name.lower())
    return " ".join(cleaned.split())


def exact(a: str, b: str) -> float:
    """1.0 on byte-equality, else 0."""
    return 1.0 if a == b else 0.0


def normalized_exact(a: str, b: str) -> float:
    """1.0 when the names match after case/punctuation normalization
    ("Residential Rev." ~ "residential rev")."""
    return 1.0 if _normalize(a) == _normalize(b) else 0.0


def _token_set(name: str) -> Set[str]:
    return set(_normalize(name).split())


def jaccard(a: str, b: str) -> float:
    """Token-set Jaccard similarity ("Export Rev." ~ "Export Revenue"
    scores 1/3; "Rev. growth" ~ "Growth" scores 1/2)."""
    tokens_a, tokens_b = _token_set(a), _token_set(b)
    if not tokens_a or not tokens_b:
        return 0.0
    return len(tokens_a & tokens_b) / len(tokens_a | tokens_b)


def levenshtein_distance(a: str, b: str) -> int:
    """Classic dynamic-programming edit distance."""
    if a == b:
        return 0
    if not a:
        return len(b)
    if not b:
        return len(a)
    previous = list(range(len(b) + 1))
    for i, char_a in enumerate(a, start=1):
        current = [i]
        for j, char_b in enumerate(b, start=1):
            cost = 0 if char_a == char_b else 1
            current.append(
                min(
                    previous[j] + 1,      # deletion
                    current[j - 1] + 1,   # insertion
                    previous[j - 1] + cost,  # substitution
                )
            )
        previous = current
    return previous[-1]


def levenshtein(a: str, b: str) -> float:
    """Edit distance scaled into a [0, 1] similarity."""
    na, nb = _normalize(a), _normalize(b)
    longest = max(len(na), len(nb))
    if longest == 0:
        return 1.0
    return 1.0 - levenshtein_distance(na, nb) / longest


def combined(a: str, b: str) -> float:
    """Max of the shipped measures — a forgiving default that still
    returns 1.0 only for a normalized exact match."""
    return max(normalized_exact(a, b), jaccard(a, b), levenshtein(a, b))


SIMILARITIES: Dict[str, SimilarityFunction] = {
    "exact": exact,
    "normalized": normalized_exact,
    "jaccard": jaccard,
    "levenshtein": levenshtein,
    "combined": combined,
}


def similarity_by_name(name: str) -> SimilarityFunction:
    try:
        return SIMILARITIES[name]
    except KeyError:
        raise ValueError(
            f"unknown similarity {name!r}; available: {sorted(SIMILARITIES)}"
        ) from None
