"""Audit-ledger smoke check — used by the CI telemetry-bench job and
runnable locally.

Runs a full anonymization cycle with the event stream enabled and a
live :class:`repro.audit.AuditLedger` attached as an observer, then
asserts the audit surface holds together:

* replaying the JSONL ledger file folds into *exactly* the same
  summary the live observer built (byte-identical integrity contract);
* the ledger recorded suppress decisions, per-iteration time-series
  points and the end-of-run outcome;
* ``why`` produces a bounded explanation naming the triggering
  measure and the threshold comparison for a suppressed cell;
* the ``python -m repro audit`` console renders summary/timeline/why
  from the file on disk.

Artifacts land in ``benchmarks/results/export/`` so CI can upload
them:

    PYTHONPATH=src python benchmarks/smoke_audit.py
"""

import json
import subprocess
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from repro import telemetry  # noqa: E402
from repro.audit import AuditLedger  # noqa: E402
from repro.data import generate_dataset  # noqa: E402
from repro.framework import VadaSA  # noqa: E402

OUTPUT_DIR = Path(__file__).parent / "results" / "export"
REPO_ROOT = Path(__file__).parent.parent


def main() -> int:
    OUTPUT_DIR.mkdir(parents=True, exist_ok=True)
    events_path = OUTPUT_DIR / "audit_events.jsonl"
    summary_path = OUTPUT_DIR / "audit_summary.json"
    why_path = OUTPUT_DIR / "audit_why.txt"
    events_path.unlink(missing_ok=True)

    telemetry.enable(events_path=str(events_path))
    live = AuditLedger()
    live.attach(telemetry.state.events)
    try:
        db = generate_dataset("R25A4W", seed=20210323, scale=25)
        vada = VadaSA()
        vada.register(db)
        result = vada.anonymize(db.name, measure="k-anonymity", k=3)
        assert result.converged, "cycle did not converge"
        report = vada.exchange_report(db.name)
        assert "SDC outcome" in report, "exchange report lost the outcome"
    finally:
        telemetry.disable()

    # Integrity contract: file replay == live observer fold, exactly.
    replayed = AuditLedger.replay(str(events_path))
    assert replayed.summary() == live.summary(), (
        "replayed ledger differs from live ledger:\n"
        f"live:     {json.dumps(live.summary(), sort_keys=True)}\n"
        f"replayed: {json.dumps(replayed.summary(), sort_keys=True)}"
    )

    summary = replayed.summary()
    assert summary["by_action"].get("suppress", 0) > 0, (
        "cycle produced no suppress decisions"
    )
    assert summary["iterations"] > 0, "no iteration time-series points"
    assert summary["outcome"].get("converged") is True
    assert summary["outcome"].get("final_risky") == 0

    # Per-cell explanation for the first suppressed cell.
    cell = next(
        record.cell for record in replayed.records
        if record.action == "suppress"
    )
    why = replayed.why(cell)
    assert "suppressed" in why, f"why() missing action:\n{why}"
    assert "k-anonymity" in why, f"why() missing measure:\n{why}"
    assert "T=" in why, f"why() missing threshold comparison:\n{why}"

    # Console renders the same story from the file on disk.
    summary_path.write_text(_console("summary", str(events_path),
                                     "--format", "json"))
    json.loads(summary_path.read_text())  # well-formed on disk
    why_path.write_text(_console("why", str(events_path),
                                 "--cell", str(cell)))
    _console("timeline", str(events_path))

    telemetry.reset()
    print(f"audit smoke OK: {summary['decisions']} decisions "
          f"({summary['by_action']}), {summary['iterations']} iterations, "
          f"why({cell}) explained -> {OUTPUT_DIR}")
    return 0


def _console(action: str, ledger: str, *extra: str) -> str:
    """Run ``python -m repro audit`` and return its stdout."""
    argv = [sys.executable, "-m", "repro", "audit", action]
    args = list(extra)
    if args and args[0] == "--cell":
        argv.append(args[1])
        args = args[2:]
    argv += ["--ledger", ledger] + args
    proc = subprocess.run(
        argv, capture_output=True, text=True, cwd=str(REPO_ROOT),
        env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
    )
    assert proc.returncode == 0, (
        f"audit {action} exited {proc.returncode}: {proc.stderr}"
    )
    assert proc.stdout.strip(), f"audit {action} produced no output"
    return proc.stdout


if __name__ == "__main__":
    sys.exit(main())
