"""Figure 7a — number of nulls injected by k-anonymity threshold.

Paper setting: datasets R25A4W / R25A4U / R25A4V, k-anonymity risk with
k in 2..5, risk threshold T = 0.5, local suppression, "less significant
first" heuristic.  Expected shape: nulls grow roughly linearly with k,
and the more unbalanced the distribution the more nulls are needed
(V >> U > W).
"""

import sys

import pytest

from repro.anonymize import AnonymizationCycle, LocalSuppression
from repro.risk import KAnonymityRisk

from paperfig import dataset, emit, render_table

DATASETS = ("R25A4W", "R25A4U", "R25A4V")
K_VALUES = (2, 3, 4, 5)


def nulls_for(code: str, k: int) -> int:
    cycle = AnonymizationCycle(
        KAnonymityRisk(k=k),
        LocalSuppression(),
        threshold=0.5,
        tuple_ordering="less-significant-first",
    )
    return cycle.run(dataset(code)).nulls_injected


def figure7a_rows():
    rows = []
    for k in K_VALUES:
        rows.append([k] + [nulls_for(code, k) for code in DATASETS])
    return rows


@pytest.mark.parametrize("code", DATASETS)
@pytest.mark.parametrize("k", (2, 5))
def test_fig7a_cycle(benchmark, code, k):
    """Benchmark one anonymization-cycle run per (dataset, k) corner."""
    benchmark.pedantic(
        nulls_for, args=(code, k), rounds=1, iterations=1
    )


def test_fig7a_report(benchmark):
    """Regenerate the full Figure 7a series (and sanity-check shape)."""
    rows = benchmark.pedantic(figure7a_rows, rounds=1, iterations=1)
    emit(render_table(
        "Figure 7a: nulls injected by k-anonymity threshold",
        ["k"] + list(DATASETS),
        rows,
    ))
    by_dataset = list(zip(*[row[1:] for row in rows]))
    w_series, u_series, v_series = by_dataset
    # Shape assertions: monotone-ish growth in k, V above W.
    assert w_series[-1] >= w_series[0]
    assert v_series[0] > w_series[0]
    assert sum(v_series) > sum(u_series) >= sum(w_series)


if __name__ == "__main__":
    emit(render_table(
        "Figure 7a: nulls injected by k-anonymity threshold",
        ["k"] + list(DATASETS),
        figure7a_rows(),
    ))
