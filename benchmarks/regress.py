"""Continuous benchmark-regression gate over ``BENCH_history.json``.

The ROADMAP's "fast as the hardware allows" goal needs a measured
trajectory: this tool appends per-run workload timings to the history
file and compares fresh runs against the accumulated baseline, exiting
non-zero when a workload slowed past the threshold.

Workloads (deterministic figure generators, seconds per run):

* ``figure7e`` — scalability by dataset size (3 risk measures); also
  records ``max_rss_bytes`` (peak resident-set size over the run,
  sampled by :class:`repro.telemetry.inspect.PeakRSSSampler`), which
  is gated exactly like latency;
* ``figure7f`` — scalability by number of quasi-identifiers (same
  ``seconds`` + ``max_rss_bytes`` pair);
* ``smoke_telemetry`` — the Figure 7a anonymization workload run with
  telemetry enabled (the instrumented-path cost);
* ``engine_fig7e`` — k-anonymity scored *through the chase engine* at
  the largest Figure 7e size: compiled plans vs the legacy enumerator
  vs the columnar batch backend (``planned_seconds`` /
  ``legacy_seconds`` / ``columnar_seconds``; the planned and legacy
  lanes pin ``use_columnar=False`` so they keep their historical
  tuple-at-a-time meaning, and the two sub-2s lanes record
  best-of-3 to shrug off machine-load spikes);
* ``engine_fig7f`` — same engine triple at the widest Figure 7f QI
  set.

Usage::

    python benchmarks/regress.py record                  # append a run
    python benchmarks/regress.py check                   # gate
    python benchmarks/regress.py check --warn-only       # PR lane
    python benchmarks/regress.py check --threshold 1.5 \
        --workloads figure7f                             # narrow gate
    python benchmarks/regress.py check --inject-slowdown 2.0  # self-test

``check`` re-runs each workload once, compares every metric against
the baseline (median of the newest ``--window`` history entries at the
same dataset scale; ``--baseline min|last`` available) and reports
``current / baseline`` ratios.  ``--inject-slowdown F`` multiplies the
fresh measurements by F before comparing — the self-test hook CI uses
to prove the gate actually trips.  ``--update`` appends the fresh
measurements to the history afterwards so the trajectory accumulates.

History entries are machine-local wall-clock seconds: a committed
baseline from one machine gates a different machine only loosely.  The
CI PR lane therefore runs ``--warn-only``; the nightly lane blocks.
"""

import argparse
import json
import statistics
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from bench_tracker import HISTORY_PATH, record_history_entry  # noqa: E402
from paperfig import SCALE  # noqa: E402

#: check fails when current / baseline exceeds this (default).
DEFAULT_THRESHOLD = 1.75

#: Baseline = aggregate over the newest N same-scale entries per tag.
DEFAULT_WINDOW = 5


def _workload_figure7e():
    import bench_fig7e_scalability_size as fig7e
    from repro.telemetry.inspect import PeakRSSSampler

    with PeakRSSSampler() as rss:
        start = time.perf_counter()
        rows = fig7e.figure7e_rows()
        seconds = time.perf_counter() - start
    assert rows, "figure 7e produced no rows"
    return {"seconds": seconds, "max_rss_bytes": rss.max_rss_bytes}


def _workload_figure7f():
    import bench_fig7f_scalability_attrs as fig7f
    from repro.telemetry.inspect import PeakRSSSampler

    with PeakRSSSampler() as rss:
        start = time.perf_counter()
        rows = fig7f.figure7f_rows()
        seconds = time.perf_counter() - start
    assert rows, "figure 7f produced no rows"
    return {"seconds": seconds, "max_rss_bytes": rss.max_rss_bytes}


def _workload_smoke_telemetry():
    from repro import telemetry

    import bench_fig7a_nulls_by_k as fig7a

    telemetry.enable()
    try:
        start = time.perf_counter()
        rows = fig7a.figure7a_rows()
        seconds = time.perf_counter() - start
    finally:
        telemetry.disable()
        telemetry.reset()
    assert rows, "figure 7a produced no rows"
    return {"seconds": seconds}


def _best_of(measure, repeats=3):
    """Minimum of ``repeats`` runs — the least noise-sensitive
    estimator of a workload's true cost (machine-load spikes only
    ever push a measurement up, never down)."""
    return min(measure() for _ in range(repeats))


def _workload_engine_fig7e():
    import bench_fig7e_scalability_size as fig7e
    from paperfig import engine_kanon_seconds

    largest = fig7e.SIZES[-1]
    return {
        "planned_seconds": _best_of(lambda: engine_kanon_seconds(
            largest, use_plans=True, columnar=False)),
        "legacy_seconds": engine_kanon_seconds(
            largest, use_plans=False, columnar=False),
        "columnar_seconds": _best_of(lambda: engine_kanon_seconds(
            largest, use_plans=True, columnar=True)),
        "parallel_seconds": _best_of(lambda: engine_kanon_seconds(
            largest, use_plans=True, columnar=False, parallelism=4)),
    }


def _workload_engine_fig7f():
    import bench_fig7f_scalability_attrs as fig7f
    from paperfig import engine_kanon_seconds

    widest = fig7f.SIZES[-1]
    return {
        "planned_seconds": _best_of(lambda: engine_kanon_seconds(
            widest, use_plans=True, columnar=False)),
        "legacy_seconds": engine_kanon_seconds(
            widest, use_plans=False, columnar=False),
        "columnar_seconds": _best_of(lambda: engine_kanon_seconds(
            widest, use_plans=True, columnar=True)),
        "parallel_seconds": _best_of(lambda: engine_kanon_seconds(
            widest, use_plans=True, columnar=False, parallelism=4)),
    }


#: name -> zero-arg callable returning {metric: number}.  Tests may
#: monkeypatch this registry with stub workloads.
WORKLOADS = {
    "figure7e": _workload_figure7e,
    "figure7f": _workload_figure7f,
    "smoke_telemetry": _workload_smoke_telemetry,
    "engine_fig7e": _workload_engine_fig7e,
    "engine_fig7f": _workload_engine_fig7f,
}


def load_history(path):
    path = Path(path)
    if not path.exists():
        return []
    data = json.loads(path.read_text())
    return data if isinstance(data, list) else [data]


def baseline_for(history, tag, metric, scale=SCALE, mode="median",
                 window=DEFAULT_WINDOW):
    """The baseline value for one (tag, metric), or None if the
    history has no same-scale entries carrying it."""
    values = [
        entry["metrics"][metric]
        for entry in history
        if entry.get("tag") == tag
        and entry.get("scale") == scale
        and metric in entry.get("metrics", {})
    ]
    values = values[-window:]
    if not values:
        return None
    if mode == "min":
        return min(values)
    if mode == "last":
        return values[-1]
    return statistics.median(values)


class Comparison:
    """One (workload, metric) current-vs-baseline verdict."""

    def __init__(self, tag, metric, current, baseline, threshold):
        self.tag = tag
        self.metric = metric
        self.current = current
        self.baseline = baseline
        self.threshold = threshold

    @property
    def ratio(self):
        if self.baseline is None or self.baseline <= 0:
            return None
        return self.current / self.baseline

    @property
    def regressed(self):
        return self.ratio is not None and self.ratio > self.threshold

    def to_json(self):
        return {
            "tag": self.tag,
            "metric": self.metric,
            "current": self.current,
            "baseline": self.baseline,
            "ratio": self.ratio,
            "threshold": self.threshold,
            "regressed": self.regressed,
        }

    def render(self):
        if self.baseline is None:
            return (f"  {self.tag}/{self.metric}: {self.current:.4g} "
                    "(no baseline — recorded as first point)")
        marker = "REGRESSION" if self.regressed else "ok"
        return (f"  {self.tag}/{self.metric}: {self.current:.4g} vs "
                f"baseline {self.baseline:.4g} "
                f"(x{self.ratio:.2f}, limit x{self.threshold:g}) "
                f"[{marker}]")


def run_workloads(names, inject_slowdown=1.0):
    """Run each named workload once; returns {tag: {metric: value}}
    with the (test-hook) slowdown factor applied."""
    results = {}
    for name in names:
        try:
            workload = WORKLOADS[name]
        except KeyError:
            raise SystemExit(
                f"unknown workload {name!r}; available: "
                f"{', '.join(sorted(WORKLOADS))}"
            )
        metrics = workload()
        results[name] = {
            metric: value * inject_slowdown
            for metric, value in metrics.items()
        }
    return results


def check(args):
    history = load_history(args.history)
    names = args.workloads or sorted(WORKLOADS)
    results = run_workloads(names, inject_slowdown=args.inject_slowdown)
    comparisons = []
    for tag, metrics in results.items():
        for metric, current in metrics.items():
            comparisons.append(Comparison(
                tag, metric, current,
                baseline_for(history, tag, metric, scale=SCALE,
                             mode=args.baseline, window=args.window),
                args.threshold,
            ))
    print(f"benchmark regression check (scale 1/{SCALE}, baseline="
          f"{args.baseline} over last {args.window}):")
    for comparison in comparisons:
        print(comparison.render())
    if args.report:
        Path(args.report).write_text(json.dumps(
            [c.to_json() for c in comparisons], indent=2
        ) + "\n")
        print(f"wrote {args.report}")
    if args.update:
        for tag, metrics in results.items():
            record_history_entry(tag, metrics, path=args.history,
                                 extra={"source": "regress-check"})
        print(f"appended {len(results)} entry(ies) to {args.history}")
    regressions = [c for c in comparisons if c.regressed]
    if regressions:
        print(f"{len(regressions)} regression(s) detected "
              f"(threshold x{args.threshold:g})", file=sys.stderr)
        return 0 if args.warn_only else 1
    missing = [c for c in comparisons if c.baseline is None]
    if missing and not args.update:
        print("note: some metrics had no baseline; run with --update "
              "or `record` to seed them", file=sys.stderr)
    return 0


def record(args):
    names = args.workloads or sorted(WORKLOADS)
    results = run_workloads(names)
    for tag, metrics in results.items():
        path = record_history_entry(tag, metrics, path=args.history,
                                    extra={"source": "regress-record"})
        rendered = ", ".join(
            f"{metric}={value:.4g}" for metric, value in metrics.items()
        )
        print(f"recorded {tag}: {rendered} -> {path}")
    return 0


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="benchmark-regression gate over BENCH_history.json"
    )
    commands = parser.add_subparsers(dest="command", required=True)

    def common(subparser):
        subparser.add_argument(
            "--history", default=str(HISTORY_PATH),
            help="history file (default: repo-root BENCH_history.json)",
        )
        subparser.add_argument(
            "--workloads", nargs="*", default=None, metavar="NAME",
            help=f"subset to run (default: all of "
            f"{', '.join(sorted(WORKLOADS))})",
        )

    record_parser = commands.add_parser(
        "record", help="run workloads and append their timings"
    )
    common(record_parser)

    check_parser = commands.add_parser(
        "check", help="run workloads and gate against the baseline"
    )
    common(check_parser)
    check_parser.add_argument(
        "--threshold", type=float, default=DEFAULT_THRESHOLD,
        help=f"fail when current/baseline exceeds this "
        f"(default {DEFAULT_THRESHOLD})",
    )
    check_parser.add_argument(
        "--baseline", choices=("median", "min", "last"),
        default="median", help="baseline aggregate (default median)",
    )
    check_parser.add_argument(
        "--window", type=int, default=DEFAULT_WINDOW,
        help=f"history entries per tag considered "
        f"(default {DEFAULT_WINDOW})",
    )
    check_parser.add_argument(
        "--warn-only", action="store_true",
        help="report regressions but exit 0 (the PR lane)",
    )
    check_parser.add_argument(
        "--update", action="store_true",
        help="append the fresh measurements to the history afterwards",
    )
    check_parser.add_argument(
        "--report", default=None, metavar="FILE.json",
        help="write the machine-readable comparison list here",
    )
    check_parser.add_argument(
        "--inject-slowdown", type=float, default=1.0, metavar="FACTOR",
        help="multiply fresh measurements by FACTOR before comparing "
        "(self-test hook: 2.0 must trip the gate)",
    )

    args = parser.parse_args(argv)
    if args.command == "record":
        return record(args)
    return check(args)


if __name__ == "__main__":
    sys.exit(main())
