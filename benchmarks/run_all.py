"""Regenerate every paper figure (and extension table) in one go.

Runs each bench module's row generator directly — no pytest needed —
prints the tables and writes machine-readable copies to
``benchmarks/results/figures.json``:

    python benchmarks/run_all.py
    REPRO_BENCH_SCALE=1 python benchmarks/run_all.py   # paper sizes

With ``--telemetry [TAG]`` (or ``REPRO_BENCH_TELEMETRY=1``) the whole
suite runs with the telemetry subsystem enabled and the final metrics
registry snapshot is appended to ``BENCH_<TAG>.json`` at the repo root
(default tag: ``telemetry_baseline``) — the perf trajectory later
optimization PRs measure themselves against.
"""

import argparse
import json
import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from repro import telemetry  # noqa: E402

from paperfig import SCALE, emit, render_table  # noqa: E402

import bench_datasets  # noqa: E402
import bench_fig7a_nulls_by_k as fig7a  # noqa: E402
import bench_fig7b_information_loss as fig7b  # noqa: E402
import bench_fig7c_null_semantics as fig7c  # noqa: E402
import bench_fig7d_business_knowledge as fig7d  # noqa: E402
import bench_fig7e_scalability_size as fig7e  # noqa: E402
import bench_fig7f_scalability_attrs as fig7f  # noqa: E402
import bench_ablation_heuristics as ablation  # noqa: E402
import bench_attack_by_k as attack_by_k  # noqa: E402
import bench_extension_measures as measures  # noqa: E402
import bench_scenarios as scenarios  # noqa: E402


FIGURES = [
    ("figure6", "Figure 6: dataset grid",
     ["Dataset", "No. Att.", "No. Tuples", "Dist.", "Data", "rows(run)",
      "risky(k=2)"],
     bench_datasets.figure6_rows),
    ("figure7a", "Figure 7a: nulls injected by k-anonymity threshold",
     ["k"] + list(fig7a.DATASETS), fig7a.figure7a_rows),
    ("figure7b", "Figure 7b: information loss by k-anonymity threshold",
     ["k"] + list(fig7b.DATASETS), fig7b.figure7b_rows),
    ("figure7c", "Figure 7c: maybe-match vs standard null semantics",
     ["k"] + [f"{c}/{s}" for c in fig7c.DATASETS
              for s in ("maybe", "std")],
     fig7c.figure7c_rows),
    ("figure7d", "Figure 7d: nulls by #control relationships",
     ["rel(paper)", "rel(run)"] + list(fig7d.DATASETS),
     fig7d.figure7d_rows),
    ("figure7e", "Figure 7e: seconds by dataset size",
     ["dataset", "rows"] + [f"{m}/{p}" for m in fig7e.MEASURES
                            for p in ("total", "risk")],
     fig7e.figure7e_rows),
    ("figure7f", "Figure 7f: seconds by #QIs",
     ["dataset", "QIs"] + list(fig7f.MEASURES), fig7f.figure7f_rows),
    ("ablation", "Heuristic & method ablation",
     ["configuration", "nulls", "recoded", "info loss", "joint TV",
      "iterations"],
     ablation.ablation_rows),
    ("attack_by_k", "Attack hardening by k",
     ["anonymization", "success", "mean cohort", "confidence",
      "E[reid]", "nulls"],
     attack_by_k.sweep_rows),
    ("measures", "Risk-measure family",
     ["measure", "T", "risky", "nulls", "converged", "assess s"],
     measures.measure_rows),
    ("scenarios", "Schema independence across scenarios",
     ["scenario", "rows", "QIs", "risky(k=2)", "nulls", "recoded",
      "converged"],
     scenarios.scenario_rows),
]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--telemetry", nargs="?", const="telemetry_baseline",
        default=None, metavar="TAG",
        help="run with telemetry enabled and append the registry "
        "snapshot to BENCH_<TAG>.json (default tag: telemetry_baseline)",
    )
    args = parser.parse_args(argv)
    tag = args.telemetry
    if tag is None and os.environ.get("REPRO_BENCH_TELEMETRY"):
        tag = "telemetry_baseline"
    if tag is not None:
        telemetry.enable()

    results = {"scale": SCALE, "figures": {}}
    for key, title, columns, generator in FIGURES:
        start = time.perf_counter()
        rows = generator()
        elapsed = time.perf_counter() - start
        emit(render_table(f"{title} (scale 1/{SCALE})", columns, rows))
        results["figures"][key] = {
            "title": title,
            "columns": columns,
            "rows": [[_plain(v) for v in row] for row in rows],
            "seconds": round(elapsed, 2),
        }
    output_dir = Path(__file__).parent / "results"
    output_dir.mkdir(exist_ok=True)
    output_path = output_dir / "figures.json"
    output_path.write_text(json.dumps(results, indent=2))
    print(f"\nwrote {output_path}")

    if tag is not None:
        from bench_tracker import (
            record_history_entry,
            record_registry_snapshot,
        )

        timings = {
            key: figure["seconds"]
            for key, figure in results["figures"].items()
        }
        bench_path = record_registry_snapshot(
            tag, extra={"figure_seconds": timings}
        )
        print(f"appended telemetry snapshot to {bench_path}")
        # Seed/extend the regression trajectory: one history entry per
        # figure, so `benchmarks/regress.py check` has baselines.
        for key, seconds in timings.items():
            history_path = record_history_entry(
                key, {"seconds": seconds}, extra={"source": "run_all"}
            )
        print(f"appended {len(timings)} figure timing(s) to "
              f"{history_path}")
        telemetry.disable()
    return 0


def _plain(value):
    if isinstance(value, (bool, int, float, str)) or value is None:
        return value
    return str(value)


if __name__ == "__main__":
    sys.exit(main())
