"""Extension — attack hardening by anonymity threshold.

Sweeps the k-anonymity threshold and measures how the Section 2.2
linkage attack degrades: success rate and mean blocking-cohort size on
the initially risky tuples, plus the file-level expected
re-identifications of the released view.  The paper's qualitative claim
("large clusters make the attack ineffective") becomes a dose-response
curve.
"""

import pytest

from repro.anonymize import AnonymizationCycle, LocalSuppression
from repro.attack import LinkageAttacker, evaluate_attack, ground_truth
from repro.data import generate_oracle
from repro.risk import KAnonymityRisk, ReidentificationRisk, file_risk

from paperfig import dataset, emit, render_table

CODE = "R25A4U"
K_VALUES = (2, 3, 5)


def sweep_rows():
    db = dataset(CODE)
    oracle = generate_oracle(db, max_population=200_000)
    truth = ground_truth(db, oracle)
    risky = KAnonymityRisk(k=2).assess(db).risky_indices(0.5)
    rows_under_attack = [r for r in risky if r in truth]
    attacker = LinkageAttacker(oracle)

    rows = []
    baseline = evaluate_attack(attacker, db, truth,
                               rows=rows_under_attack)
    reid = ReidentificationRisk().assess(db)
    rows.append([
        "none",
        round(baseline.success_rate, 3),
        round(baseline.mean_cohort, 1),
        round(baseline.mean_confidence, 3),
        round(file_risk(reid).expected_reidentifications, 2),
        0,
    ])
    for k in K_VALUES:
        result = AnonymizationCycle(
            KAnonymityRisk(k=k), LocalSuppression(), threshold=0.5
        ).run(db)
        evaluation = evaluate_attack(
            attacker, result.db, truth, rows=rows_under_attack
        )
        reid = ReidentificationRisk().assess(result.db)
        rows.append([
            f"k={k}",
            round(evaluation.success_rate, 3),
            round(evaluation.mean_cohort, 1),
            round(evaluation.mean_confidence, 3),
            round(file_risk(reid).expected_reidentifications, 2),
            result.nulls_injected,
        ])
    return rows


def test_attack_by_k_report(benchmark):
    rows = benchmark.pedantic(sweep_rows, rounds=1, iterations=1)
    emit(render_table(
        f"Attack hardening by anonymity threshold ({CODE}, risky rows)",
        ["anonymization", "success", "mean cohort", "confidence",
         "E[reid] (file)", "nulls"],
        rows,
    ))
    # Dose-response: every anonymized release widens cohorts and cuts
    # success vs the raw file; the file-level expected
    # re-identifications fall monotonically with k (which QI gets
    # suppressed varies, so per-k cohort sizes may wiggle slightly).
    baseline_success, baseline_cohort = rows[0][1], rows[0][2]
    for row in rows[1:]:
        assert row[1] <= baseline_success
        assert row[2] >= baseline_cohort
    expected = [row[4] for row in rows]
    assert expected == sorted(expected, reverse=True)


if __name__ == "__main__":
    emit(render_table(
        f"Attack hardening by anonymity threshold ({CODE})",
        ["anonymization", "success", "mean cohort", "confidence",
         "E[reid] (file)", "nulls"],
        sweep_rows(),
    ))
