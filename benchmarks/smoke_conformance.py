"""Conformance smoke check — used by the CI conformance lane and
runnable locally.

Runs a fixed-seed batch of generated warded programs through the chase
engine's compiled-plan path, its legacy recursive enumerator AND the
naive reference oracle (``engine_variant="both"``), asserting zero
three-way disagreements up to null isomorphism.  The third argument
selects the fact-store backend(s): ``both`` (the default) first gates
columnar/dict agreement on every pair, ``dict`` keeps the run on the
tuple-at-a-time backend only.  The fourth argument selects the chase
execution mode(s): ``both`` (the default) additionally gates
bit-identical parallel/serial agreement — facts, EGD violations,
round counts and provenance order — on every pair before the
engine/oracle diff, ``serial`` skips the parallel lane:

    PYTHONPATH=src python benchmarks/smoke_conformance.py \
        [examples] [variant] [backend] [parallelism]

Exits non-zero if any pair disagrees; the failing seeds are minimized
and written as replayable artifacts under ``conformance-artifacts/``.
Disagreements include the static analyzer's view: a generated program
the analyzer rejects (``analyzer-dirty``) or one it accepts that the
engine's own static checks refuse (``analyzer-engine-disagree``) both
fail the gate — as does a program the static leakage pass calls clean
that dynamically discloses a sentinel identifier (``flow-disagree``).
The run also asserts the leakage cross-check got real coverage: at
least 60% of the pairs must carry the sensitivity-seeding substrate
(sentinel identifiers + ``@output`` marks) and run the check.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from repro.testing import run_conformance  # noqa: E402
from repro.testing.conformance import ConformanceOutcome  # noqa: E402

BASE_SEED = 20260805


def main() -> int:
    examples = int(sys.argv[1]) if len(sys.argv) > 1 else 500
    variant = sys.argv[2] if len(sys.argv) > 2 else "both"
    backend = sys.argv[3] if len(sys.argv) > 3 else "both"
    parallelism = sys.argv[4] if len(sys.argv) > 4 else "both"
    report = run_conformance(
        base_seed=BASE_SEED,
        examples=examples,
        artifact_dir="conformance-artifacts",
        engine_variant=variant,
        backend=backend,
        parallelism=parallelism,
    )
    print("conformance smoke:", report.summary())
    disagreements = report.disagreements
    if disagreements:
        for outcome in disagreements:
            print(f"seed {outcome.seed} [{outcome.status}]: {outcome.detail}")
        for path in report.artifacts:
            print("artifact:", path)
        return 1
    skipped = sum(
        report.counts.get(status, 0)
        for status in ConformanceOutcome.SKIP_STATUSES
    )
    executed = report.executed - skipped
    assert executed >= int(0.9 * examples), (
        f"too many budget skips: only {executed}/{examples} pairs "
        "actually compared"
    )
    assert report.flow_checked >= int(0.6 * examples), (
        f"leakage cross-check coverage too thin: only "
        f"{report.flow_checked}/{examples} pairs carried sentinel "
        "identifiers and ran the static-vs-dynamic comparison"
    )
    print(
        f"conformance smoke OK: {executed} pairs compared, "
        f"{report.flow_checked} flow-checked, 0 disagreements"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
