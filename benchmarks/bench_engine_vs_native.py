"""Ablation — engine-evaluated Vadalog risk programs vs native
plug-ins.

The same risk logic runs twice: as a declarative Vadalog module on the
chase engine (the fidelity path) and as the registered native measure
(the plug-in path the cycle uses at scale).  The benchmark quantifies
the speed gap; equivalence of the results is asserted (it is also
covered by the unit tests on the survey fixtures).
"""

import time

import pytest

from repro.model import STANDARD
from repro.risk import KAnonymityRisk
from repro.vadalog import Program
from repro.vadalog.atoms import Atom
from repro.vadalog_programs import K_ANONYMITY, TUPLE_BUILD

from paperfig import dataset, emit, render_table

CODE = "R6A4U"


def engine_scores(db, k=2):
    facts = db.to_facts()
    facts.append(
        Atom.of("anonSet", db.name, frozenset(db.quasi_identifiers))
    )
    facts.append(Atom.of("param", "k", k))
    program = Program.parse(TUPLE_BUILD + K_ANONYMITY)
    result = program.run(facts, provenance=False)
    scores = {}
    for i, r in result.tuples("riskOutput"):
        scores[i] = max(scores.get(i, 0), r)
    return [scores[i] for i in range(len(db))]


def comparison_rows():
    db = dataset(CODE)
    start = time.perf_counter()
    engine = engine_scores(db)
    engine_time = time.perf_counter() - start
    start = time.perf_counter()
    native = KAnonymityRisk(k=2).assess(db, semantics=STANDARD).scores
    native_time = time.perf_counter() - start
    assert engine == native, "engine and native risk disagree"
    return [
        ["vadalog engine", round(engine_time, 4)],
        ["native plug-in", round(native_time, 4)],
        ["speedup", round(engine_time / max(native_time, 1e-9), 1)],
    ]


def test_engine_vs_native_report(benchmark):
    rows = benchmark.pedantic(comparison_rows, rounds=1, iterations=1)
    emit(render_table(
        f"k-anonymity risk on {CODE}: engine vs native executor",
        ["path", "seconds"],
        rows,
    ))


def test_native_risk_benchmark(benchmark):
    db = dataset(CODE)
    measure = KAnonymityRisk(k=2)
    benchmark.pedantic(measure.assess, args=(db,), rounds=3, iterations=1)


def test_engine_risk_benchmark(benchmark):
    db = dataset(CODE)
    benchmark.pedantic(engine_scores, args=(db,), rounds=1, iterations=1)


if __name__ == "__main__":
    emit(render_table(
        f"k-anonymity risk on {CODE}: engine vs native executor",
        ["path", "seconds"],
        comparison_rows(),
    ))
