"""Section 2.2 — attack-strategy effectiveness before/after
anonymization.

Not a numbered figure, but the paper's implicit empirical claim:
anonymization makes blocking ineffective ("with large clusters,
exhaustive comparison ... yields an overly uncertain result").  We run
the record-linkage attacker against the identity oracle on the risky
tuples of an unbalanced dataset, before and after the anonymization
cycle.
"""

import pytest

from repro.anonymize import AnonymizationCycle, LocalSuppression
from repro.attack import LinkageAttacker, evaluate_attack, ground_truth
from repro.data import generate_oracle
from repro.risk import KAnonymityRisk

from paperfig import dataset, emit, render_table


def attack_before_after():
    db = dataset("R25A4U")
    oracle = generate_oracle(db, max_population=200_000)
    truth = ground_truth(db, oracle)
    risky = KAnonymityRisk(k=2).assess(db).risky_indices(0.5)
    rows = [r for r in risky if r in truth]
    attacker = LinkageAttacker(oracle)

    before = evaluate_attack(attacker, db, truth, rows=rows)
    result = AnonymizationCycle(
        KAnonymityRisk(k=2), LocalSuppression(), threshold=0.5
    ).run(db)
    after = evaluate_attack(attacker, result.db, truth, rows=rows)
    return before, after, len(rows)


def test_attack_report(benchmark):
    before, after, attempted = benchmark.pedantic(
        attack_before_after, rounds=1, iterations=1
    )
    emit(render_table(
        "Attack effectiveness on risky tuples (R25A4U)",
        ["phase", "re-identified", "attempted", "success",
         "mean confidence", "mean cohort"],
        [
            ["before", before.re_identified, attempted,
             round(before.success_rate, 3),
             round(before.mean_confidence, 3),
             round(before.mean_cohort, 1)],
            ["after", after.re_identified, attempted,
             round(after.success_rate, 3),
             round(after.mean_confidence, 3),
             round(after.mean_cohort, 1)],
        ],
    ))
    assert after.mean_cohort >= before.mean_cohort
    assert after.success_rate <= before.success_rate + 1e-9


if __name__ == "__main__":
    before, after, attempted = attack_before_after()
    print("before:", before.success_rate, before.mean_cohort)
    print("after:", after.success_rate, after.mean_cohort)
