"""Figure 7d — nulls injected by number of control relationships.

Paper setting: R25A4W/U/V, k-anonymity with k = 2, T = 0.5, local
suppression, with the enhanced cycle of Algorithm 9 propagating risk
over company-control clusters; the relationship count sweeps 0..400.
Expected shape: nulls grow with the number of relationships, and the
more unbalanced the dataset the stronger the propagation effect
(V max, W min).

Relationship counts scale with the benchmark's dataset scale so
cluster density matches the paper's 25k-row setting.
"""

import pytest

from repro.business import anonymize_with_business_knowledge
from repro.anonymize import LocalSuppression
from repro.data import ownership_for_db
from repro.risk import KAnonymityRisk

from paperfig import SCALE, dataset, emit, render_table

DATASETS = ("R25A4W", "R25A4U", "R25A4V")
PAPER_RELATIONSHIPS = (0, 100, 200, 300, 400)


def scaled_relationships():
    return [max(0, r // SCALE) for r in PAPER_RELATIONSHIPS]


def nulls_for(code: str, relationships: int) -> int:
    db = dataset(code)
    graph = ownership_for_db(db, relationships, seed=7)
    result = anonymize_with_business_knowledge(
        db,
        graph,
        KAnonymityRisk(k=2),
        LocalSuppression(),
        threshold=0.5,
    )
    return result.nulls_injected


def figure7d_rows():
    rows = []
    for paper_count, scaled in zip(
        PAPER_RELATIONSHIPS, scaled_relationships()
    ):
        rows.append(
            [paper_count, scaled]
            + [nulls_for(code, scaled) for code in DATASETS]
        )
    return rows


@pytest.mark.parametrize("relationships", [0, 8])
def test_fig7d_cycle(benchmark, relationships):
    benchmark.pedantic(
        nulls_for, args=("R25A4U", relationships), rounds=1, iterations=1
    )


def test_fig7d_report(benchmark):
    rows = benchmark.pedantic(figure7d_rows, rounds=1, iterations=1)
    emit(render_table(
        "Figure 7d: nulls injected by #control relationships "
        "(paper-count / scaled)",
        ["rel(paper)", "rel(run)"] + list(DATASETS),
        rows,
    ))
    for column, code in enumerate(DATASETS, start=2):
        series = [row[column] for row in rows]
        # Shape: relationships increase suppression pressure.
        assert series[-1] >= series[0]
    # V's propagation dominates W's.
    assert sum(row[4] for row in rows) > sum(row[2] for row in rows)


if __name__ == "__main__":
    emit(render_table(
        "Figure 7d: nulls injected by #control relationships",
        ["rel(paper)", "rel(run)"] + list(DATASETS),
        figure7d_rows(),
    ))
