"""Telemetry smoke check — used by the CI smoke job and runnable
locally.

Enables the telemetry subsystem, runs the Figure 7a workload
(nulls injected by k-anonymity threshold) end to end, and asserts the
resulting metrics snapshot is non-empty and contains the instruments
the engine and anonymization cycle are expected to emit:

    PYTHONPATH=src python benchmarks/smoke_telemetry.py

Exits non-zero (AssertionError) if instrumentation went dark.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from repro import telemetry  # noqa: E402

import bench_fig7a_nulls_by_k as fig7a  # noqa: E402


def main() -> int:
    telemetry.enable()
    try:
        rows = fig7a.figure7a_rows()
        snapshot = telemetry.snapshot()
    finally:
        telemetry.disable()

    assert rows, "figure 7a produced no rows"
    counters = snapshot["counters"]
    histograms = snapshot["histograms"]
    assert counters, "telemetry enabled but no counters recorded"
    assert histograms, "telemetry enabled but no histograms recorded"

    # The cycle and the suppression machinery must have reported in.
    assert counters.get("cycle.runs", 0) > 0, (
        "anonymization cycle ran without recording cycle.runs"
    )
    assert counters.get("cycle.suppression_steps", 0) > 0, (
        "figure 7a injects nulls, so suppression steps must be > 0"
    )
    timing = [name for name in histograms if "_ns" in name]
    assert timing, "no timing histograms recorded"

    print(f"telemetry smoke OK: {len(counters)} counters, "
          f"{len(histograms)} histograms "
          f"({counters['cycle.runs']} cycle runs, "
          f"{counters['cycle.suppression_steps']} suppression steps)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
