"""Shared helpers for the figure-regeneration benchmarks.

Every ``bench_fig7*.py`` regenerates one panel of Figure 7.  Datasets
follow the Figure 6 grid, scaled down by ``REPRO_BENCH_SCALE`` (default
25, i.e. R25A4W becomes 1 000 rows) so the suite is CI-friendly;
set ``REPRO_BENCH_SCALE=1`` to run the paper's original sizes.

The helpers cache generated datasets per (code, seed) and render the
aligned text tables the modules print — the "same rows/series the paper
reports", shape-comparable rather than absolute.
"""

from __future__ import annotations

import os
from functools import lru_cache
from typing import Dict, Iterable, List, Sequence

from repro.data import generate_dataset

#: Row-count divisor for every benchmark dataset.
SCALE = int(os.environ.get("REPRO_BENCH_SCALE", "25"))

#: Seed shared by all benchmark datasets (deterministic figures).
SEED = 20210323


@lru_cache(maxsize=32)
def dataset(code: str, seed: int = SEED):
    """Generate (and cache) a Figure 6 dataset at benchmark scale."""
    return generate_dataset(code, seed=seed, scale=SCALE)


def engine_kanon_seconds(
    code: str,
    use_plans: bool = True,
    columnar: bool = False,
    parallelism: int = 0,
) -> float:
    """Seconds to score a dataset's k-anonymity risk *through the
    chase engine* (TUPLE_BUILD + K_ANONYMITY, k = 2) — the reasoning
    path the native risk measures shortcut.  ``use_plans`` selects
    compiled join plans or the legacy recursive enumerator,
    ``columnar`` opts the run into the columnar batch backend
    (pinned off by default so the planned/legacy lanes keep their
    historical tuple-at-a-time meaning), and ``parallelism`` selects
    the sharded parallel chase's worker count (0 pins the run serial
    even under a ``CHASE_PARALLELISM`` environment variable, so the
    serial lanes stay serial), letting the benches record the
    planned-vs-legacy-vs-columnar-vs-parallel trajectory side by side.
    """
    import time

    from repro.vadalog.atoms import Atom
    from repro.vadalog.program import Program
    from repro.vadalog_programs.programs import K_ANONYMITY, TUPLE_BUILD

    db = dataset(code)
    facts = list(db.to_facts())
    facts.append(
        Atom.of("anonSet", db.name, frozenset(db.quasi_identifiers))
    )
    facts.append(Atom.of("param", "k", 2))
    program = Program.parse(TUPLE_BUILD + K_ANONYMITY)
    start = time.perf_counter()
    result = program.run(
        facts, provenance=False, preflight=False, use_plans=use_plans,
        use_columnar=columnar,
        parallelism=parallelism if parallelism else 1,
    )
    seconds = time.perf_counter() - start
    assert result.tuples("riskOutput"), "engine scored no tuples"
    return seconds


def render_table(
    title: str,
    columns: Sequence[str],
    rows: Iterable[Sequence],
) -> str:
    """Render an aligned text table with a title banner."""
    rows = [[_fmt(value) for value in row] for row in rows]
    widths = [len(c) for c in columns]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [title, "=" * len(title)]
    header = "  ".join(
        column.ljust(widths[index])
        for index, column in enumerate(columns)
    )
    lines.append(header)
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append(
            "  ".join(
                cell.ljust(widths[index]) for index, cell in enumerate(row)
            )
        )
    return "\n".join(lines)


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def emit(text: str) -> None:
    """Print a regenerated table (flushed so it interleaves sanely with
    pytest-benchmark output)."""
    print("\n" + text + "\n", flush=True)
