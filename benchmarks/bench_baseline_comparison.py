"""Extension — Vada-SA vs the classical SDC toolbox.

One dataset, one requirement (2-anonymity), four ways to get there:

* Vada-SA cycle (maybe-match local suppression, greedy heuristics);
* procedural sdcMicro-style suppression (NA category);
* Mondrian/ARX-style multidimensional generalization;
* random record swapping (perturbative; only *approximately* defeats
  linkage, never satisfies k-anonymity per se).

Reported: cells touched, residual risky rows, joint-distribution
utility (total variation vs the original), and whether the requirement
holds afterwards — quantifying the paper's claim that the declarative
minimal-removal approach preserves the most statistics.
"""

import pytest

from repro.anonymize import (
    AnonymizationCycle,
    LocalSuppression,
    joint_distance,
)
from repro.baselines import (
    mondrian_k_anonymity,
    procedural_k_anonymity,
    random_swap,
)
from repro.data import survey_hierarchy
from repro.model import MAYBE_MATCH, STANDARD
from repro.risk import KAnonymityRisk

from paperfig import dataset, emit, render_table

CODE = "R25A4U"


def comparison_rows():
    db = dataset(CODE)
    measure = KAnonymityRisk(k=2)
    rows = []

    cycle = AnonymizationCycle(
        measure, LocalSuppression(), threshold=0.5
    ).run(db)
    rows.append([
        "Vada-SA cycle (suppression)",
        cycle.nulls_injected,
        len(measure.assess(cycle.db).risky_indices(0.5)),
        round(joint_distance(db, cycle.db), 4),
    ])

    procedural = procedural_k_anonymity(db, k=2)
    residual = sum(
        1 for c in STANDARD.match_counts(procedural.db) if c < 2
    )
    rows.append([
        "procedural (sdcMicro-style)",
        procedural.suppressions,
        residual,
        round(joint_distance(db, procedural.db), 4),
    ])

    mondrian = mondrian_k_anonymity(
        db, k=2, hierarchy=survey_hierarchy()
    )
    rows.append([
        "Mondrian / ARX-style",
        mondrian.generalized_cells,
        sum(1 for c in STANDARD.match_counts(mondrian.db) if c < 2),
        round(joint_distance(db, mondrian.db), 4),
    ])

    swapped = random_swap(db, "Sector", fraction=0.5, seed=7)
    rows.append([
        "record swapping (Sector, 50%)",
        swapped.swapped_rows,
        len(measure.assess(swapped.db,
                           semantics=MAYBE_MATCH).risky_indices(0.5)),
        round(joint_distance(db, swapped.db), 4),
    ])
    return rows


def test_baseline_comparison_report(benchmark):
    rows = benchmark.pedantic(comparison_rows, rounds=1, iterations=1)
    emit(render_table(
        f"Reaching 2-anonymity on {CODE}: approaches compared",
        ["approach", "cells touched", "residual risky", "joint TV"],
        rows,
    ))
    by_label = {row[0]: row for row in rows}
    vada = by_label["Vada-SA cycle (suppression)"]
    # Vada-SA touches the fewest cells and leaves no residual risk.
    assert vada[2] == 0
    for label, row in by_label.items():
        if label != "Vada-SA cycle (suppression)":
            assert vada[1] <= row[1]
    # ... and preserves the joint distribution at least as well as the
    # uniform Mondrian generalization.
    assert vada[3] <= by_label["Mondrian / ARX-style"][3] + 1e-9


if __name__ == "__main__":
    emit(render_table(
        f"Reaching 2-anonymity on {CODE}: approaches compared",
        ["approach", "cells touched", "residual risky", "joint TV"],
        comparison_rows(),
    ))
