"""Telemetry-disabled overhead gate — used by the CI telemetry-bench
job and runnable locally.

The observability stack promises "effectively free while off".  This
check makes that falsifiable on the Figure 7a anonymization workload:

1. **functional zero-overhead** — a disabled run records no counters,
   no spans and no events;
2. **dormant-machinery overhead** — interleaved best-of-N timing of
   the workload plain vs. with the full export stack constructed but
   telemetry OFF (event log attached to the state, exporters
   imported).  The ratio must stay under the tolerance (default 2%);
3. **enabled overhead** — reported for information, not gated (the
   instrumented path is allowed to cost; the regression gate tracks
   it over time via the ``smoke_telemetry`` history tag).

Best-of-N wall times are compared because the minimum is the stable
estimator under scheduler noise.

    PYTHONPATH=src python benchmarks/overhead_check.py
    REPRO_OVERHEAD_TOLERANCE=1.05 python benchmarks/overhead_check.py
"""

import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from repro import telemetry  # noqa: E402
from repro.telemetry.events import EventLog  # noqa: E402

import bench_fig7a_nulls_by_k as fig7a  # noqa: E402

from paperfig import dataset  # noqa: E402

#: disabled-with-machinery / disabled-plain must stay under this.
TOLERANCE = float(os.environ.get("REPRO_OVERHEAD_TOLERANCE", "1.02"))

#: best-of-N repetitions per configuration.
REPEATS = int(os.environ.get("REPRO_OVERHEAD_REPEATS", "5"))


def workload() -> None:
    """One Figure 7a corner (heaviest dataset, both k extremes)."""
    fig7a.nulls_for("R25A4V", 2)
    fig7a.nulls_for("R25A4V", 5)


def timed() -> float:
    start = time.perf_counter()
    workload()
    return time.perf_counter() - start


def best_of(repeats: int) -> float:
    return min(timed() for _ in range(repeats))


def main() -> int:
    # Warm dataset caches and code paths out of the timed region.
    for code in ("R25A4V",):
        dataset(code)
    workload()

    # 1. Functional zero-overhead while disabled.
    telemetry.disable()
    telemetry.reset()
    workload()
    snapshot = telemetry.snapshot()
    assert snapshot["counters"] == {}, (
        f"disabled run recorded counters: {snapshot['counters']}"
    )
    assert telemetry.tracer().spans() == [], (
        "disabled run recorded spans"
    )
    assert telemetry.events() is None, (
        "disabled state carries an event log"
    )

    # 2. Timing: plain-disabled vs disabled with the export machinery
    #    constructed.  The configurations alternate within each round
    #    so clock drift and thermal effects hit both equally.
    dormant_log = EventLog(path=None)
    plain = dormant = float("inf")
    for _ in range(REPEATS):
        plain = min(plain, timed())
        telemetry.state.events = dormant_log  # attached, enabled=False
        try:
            dormant = min(dormant, timed())
        finally:
            telemetry.state.events = None
    dormant_log.close()
    assert len(dormant_log) == 0, (
        "dormant event log received events while telemetry was off"
    )

    ratio = dormant / plain
    print(f"disabled plain:     {plain * 1e3:8.2f} ms (best of "
          f"{REPEATS})")
    print(f"disabled + machinery:{dormant * 1e3:7.2f} ms "
          f"(ratio x{ratio:.4f}, tolerance x{TOLERANCE:g})")

    # 3. Enabled cost, informational.
    telemetry.enable(events=True)
    try:
        enabled = best_of(max(2, REPEATS - 2))
    finally:
        telemetry.disable()
        telemetry.reset()
    print(f"enabled (info only): {enabled * 1e3:7.2f} ms "
          f"(x{enabled / plain:.3f} vs disabled)")

    if ratio > TOLERANCE:
        print(f"FAIL: dormant telemetry machinery costs "
              f"x{ratio:.4f} > x{TOLERANCE:g}", file=sys.stderr)
        return 1
    print("overhead check OK: telemetry-disabled path within noise")
    return 0


if __name__ == "__main__":
    sys.exit(main())
