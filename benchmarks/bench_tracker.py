"""Micro-benchmark — the within-iteration GroupTracker — and the
bench *trajectory* recorder.

The cycle's recheck (skip tuples already fixed by earlier suppressions
in the same pass) relies on O(|null rows|) incremental group statistics
instead of a full semantics recomputation.  This bench quantifies the
per-recheck cost of both paths — the design choice that keeps the
injected-null counts minimal *and* the cycle fast.

:func:`record_registry_snapshot` is the perf-baseline hook: it appends
the current telemetry registry snapshot (chase iterations, rule
firings, wall-time histograms, ...) to a ``BENCH_<tag>.json`` file at
the repo root, so each perf-focused PR can extend the trajectory and
compare itself against every previous baseline.  ``run_all.py
--telemetry`` drives it over the whole figure suite.
"""

import datetime
import json
import time
from pathlib import Path

import pytest

from repro import telemetry
from repro.anonymize import GroupTracker, LocalSuppression
from repro.model import MAYBE_MATCH
from repro.vadalog.terms import NullFactory

from paperfig import SCALE, dataset, emit, render_table

CODE = "R25A4U"

#: BENCH_*.json files live at the repository root, next to ROADMAP.md.
REPO_ROOT = Path(__file__).resolve().parent.parent

#: The continuous perf trajectory ``benchmarks/regress.py`` gates on.
HISTORY_PATH = REPO_ROOT / "BENCH_history.json"


def record_history_entry(tag, metrics, extra=None, path=None):
    """Append one per-run snapshot to ``BENCH_history.json``.

    ``tag`` names the workload (``figure7e``, ``smoke_telemetry``, ...),
    ``metrics`` is a flat ``{metric_name: number}`` dict (seconds,
    counts).  Entries carry the dataset ``scale`` so the regression
    gate only ever compares like with like.  Returns the path written.
    """
    target = Path(path) if path is not None else HISTORY_PATH
    entry = {
        "recorded_at": datetime.datetime.now(
            datetime.timezone.utc
        ).isoformat(timespec="seconds"),
        "tag": tag,
        "scale": SCALE,
        "metrics": {str(k): v for k, v in dict(metrics).items()},
    }
    if extra:
        entry.update(extra)
    history = []
    if target.exists():
        try:
            history = json.loads(target.read_text())
        except (ValueError, OSError):
            history = []
        if not isinstance(history, list):
            history = [history]
    history.append(entry)
    target.write_text(json.dumps(history, indent=2) + "\n")
    return target


def record_registry_snapshot(tag, extra=None, path=None):
    """Append the active telemetry registry snapshot to
    ``BENCH_<tag>.json`` (a JSON list — one entry per recorded run —
    forming the perf trajectory re-anchored by later PRs).

    Returns the path written.  ``extra`` is merged into the entry
    (figure timings, dataset scale, git describe, ...).
    """
    target = (
        Path(path) if path is not None
        else REPO_ROOT / f"BENCH_{tag}.json"
    )
    entry = {
        "recorded_at": datetime.datetime.now(
            datetime.timezone.utc
        ).isoformat(timespec="seconds"),
        "scale": SCALE,
        "telemetry": telemetry.snapshot(),
    }
    if extra:
        entry.update(extra)
    trajectory = []
    if target.exists():
        try:
            trajectory = json.loads(target.read_text())
        except (ValueError, OSError):
            trajectory = []
        if not isinstance(trajectory, list):
            trajectory = [trajectory]
    trajectory.append(entry)
    target.write_text(json.dumps(trajectory, indent=2) + "\n")
    return target


def tracker_vs_recompute():
    db = dataset(CODE).copy()
    attributes = db.quasi_identifiers
    tracker = GroupTracker(db, attributes, MAYBE_MATCH)
    method = LocalSuppression()
    factory = NullFactory()
    # Suppress a handful of cells so null rows exist.
    for row in range(0, 40, 4):
        old_key = tracker.before_change(row)
        method.apply(db, row, attributes[row % len(attributes)], factory)
        tracker.after_change(row, old_key)

    probes = list(range(0, len(db), 7))
    start = time.perf_counter()
    for row in probes:
        tracker.stats(row)
    tracker_time = time.perf_counter() - start

    start = time.perf_counter()
    counts = MAYBE_MATCH.match_counts(db, attributes)
    recompute_time = time.perf_counter() - start

    # Consistency: the tracker agrees with the full recomputation.
    for row in probes:
        count, _ = tracker.stats(row)
        assert count == counts[row]

    per_probe = tracker_time / len(probes)
    return [
        ["tracker recheck (per row)", round(per_probe * 1e6, 1), "µs"],
        ["full recomputation (whole file)",
         round(recompute_time * 1e3, 2), "ms"],
        ["break-even (#rechecks per recompute)",
         round(recompute_time / max(per_probe, 1e-12)), "rechecks"],
    ]


def test_tracker_report(benchmark):
    rows = benchmark.pedantic(tracker_vs_recompute, rounds=1,
                              iterations=1)
    emit(render_table(
        f"GroupTracker recheck vs full recomputation ({CODE})",
        ["operation", "cost", "unit"],
        rows,
    ))


def test_tracker_stats_benchmark(benchmark):
    db = dataset(CODE).copy()
    tracker = GroupTracker(db, db.quasi_identifiers, MAYBE_MATCH)
    benchmark.pedantic(
        lambda: [tracker.stats(row) for row in range(0, len(db), 11)],
        rounds=3,
        iterations=1,
    )


if __name__ == "__main__":
    emit(render_table(
        f"GroupTracker recheck vs full recomputation ({CODE})",
        ["operation", "cost", "unit"],
        tracker_vs_recompute(),
    ))
