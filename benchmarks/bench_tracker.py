"""Micro-benchmark — the within-iteration GroupTracker.

The cycle's recheck (skip tuples already fixed by earlier suppressions
in the same pass) relies on O(|null rows|) incremental group statistics
instead of a full semantics recomputation.  This bench quantifies the
per-recheck cost of both paths — the design choice that keeps the
injected-null counts minimal *and* the cycle fast.
"""

import time

import pytest

from repro.anonymize import GroupTracker, LocalSuppression
from repro.model import MAYBE_MATCH
from repro.vadalog.terms import NullFactory

from paperfig import dataset, emit, render_table

CODE = "R25A4U"


def tracker_vs_recompute():
    db = dataset(CODE).copy()
    attributes = db.quasi_identifiers
    tracker = GroupTracker(db, attributes, MAYBE_MATCH)
    method = LocalSuppression()
    factory = NullFactory()
    # Suppress a handful of cells so null rows exist.
    for row in range(0, 40, 4):
        old_key = tracker.before_change(row)
        method.apply(db, row, attributes[row % len(attributes)], factory)
        tracker.after_change(row, old_key)

    probes = list(range(0, len(db), 7))
    start = time.perf_counter()
    for row in probes:
        tracker.stats(row)
    tracker_time = time.perf_counter() - start

    start = time.perf_counter()
    counts = MAYBE_MATCH.match_counts(db, attributes)
    recompute_time = time.perf_counter() - start

    # Consistency: the tracker agrees with the full recomputation.
    for row in probes:
        count, _ = tracker.stats(row)
        assert count == counts[row]

    per_probe = tracker_time / len(probes)
    return [
        ["tracker recheck (per row)", round(per_probe * 1e6, 1), "µs"],
        ["full recomputation (whole file)",
         round(recompute_time * 1e3, 2), "ms"],
        ["break-even (#rechecks per recompute)",
         round(recompute_time / max(per_probe, 1e-12)), "rechecks"],
    ]


def test_tracker_report(benchmark):
    rows = benchmark.pedantic(tracker_vs_recompute, rounds=1,
                              iterations=1)
    emit(render_table(
        f"GroupTracker recheck vs full recomputation ({CODE})",
        ["operation", "cost", "unit"],
        rows,
    ))


def test_tracker_stats_benchmark(benchmark):
    db = dataset(CODE).copy()
    tracker = GroupTracker(db, db.quasi_identifiers, MAYBE_MATCH)
    benchmark.pedantic(
        lambda: [tracker.stats(row) for row in range(0, len(db), 11)],
        rounds=3,
        iterations=1,
    )


if __name__ == "__main__":
    emit(render_table(
        f"GroupTracker recheck vs full recomputation ({CODE})",
        ["operation", "cost", "unit"],
        tracker_vs_recompute(),
    ))
