"""Section 4.4 ablation — runtime heuristics and design choices.

Quantifies the design decisions DESIGN.md calls out:

1. "most risky first" QI selection vs fixed-order vs random
   (nulls injected and information loss);
2. "less significant first" tuple routing vs FIFO
   (utility-weighted loss);
3. the declarative maybe-match cycle vs the procedural sdcMicro-style
   baseline (suppression counts);
4. within-iteration recheck on vs off (nulls injected).
"""

import pytest

from repro.anonymize import (
    AdaptiveMethod,
    AnonymizationCycle,
    LocalSuppression,
    RecodeThenSuppress,
    UtilityReport,
)
from repro.baselines import procedural_k_anonymity
from repro.data import survey_hierarchy
from repro.risk import KAnonymityRisk

from paperfig import dataset, emit, render_table

CODE = "R25A4U"


def run_cycle(qi_selection="most-risky-first",
              tuple_ordering="less-significant-first",
              recheck=True,
              method=None):
    cycle = AnonymizationCycle(
        KAnonymityRisk(k=2),
        method if method is not None else LocalSuppression(),
        threshold=0.5,
        qi_selection=qi_selection,
        tuple_ordering=tuple_ordering,
        recheck=recheck,
    )
    return cycle.run(dataset(CODE))


def ablation_rows():
    hierarchy = survey_hierarchy()
    rows = []
    configurations = [
        ("paper (MRF + LSF + recheck)", {}),
        ("fixed-order QI", {"qi_selection": "fixed-order"}),
        ("random QI", {"qi_selection": "random"}),
        ("FIFO tuples", {"tuple_ordering": "fifo"}),
        ("no recheck", {"recheck": False}),
        ("recode-then-suppress",
         {"method": RecodeThenSuppress(hierarchy)}),
        ("adaptive (recode, patience 2)",
         {"method": AdaptiveMethod(hierarchy, patience=2)}),
    ]
    original = dataset(CODE)
    for label, kwargs in configurations:
        result = run_cycle(**kwargs)
        utility = UtilityReport(original, result.db)
        rows.append([
            label,
            result.nulls_injected,
            result.recoded_cells,
            round(result.information_loss, 4),
            round(utility.joint, 4),
            result.iterations,
        ])
    baseline = procedural_k_anonymity(original, k=2)
    rows.append([
        "procedural baseline (sdcMicro-style)",
        baseline.suppressions,
        0,
        "-",
        "-",
        baseline.iterations,
    ])
    return rows


def test_ablation_report(benchmark):
    rows = benchmark.pedantic(ablation_rows, rounds=1, iterations=1)
    emit(render_table(
        f"Heuristic & method ablation on {CODE}",
        ["configuration", "nulls", "recoded", "info loss", "joint TV",
         "iterations"],
        rows,
    ))
    paper = rows[0]
    no_recheck = rows[4]
    recode = rows[5]
    baseline = rows[-1]
    # The paper configuration dominates the no-recheck variant and the
    # procedural baseline on suppression counts.
    assert paper[1] <= no_recheck[1]
    assert paper[1] <= baseline[1]
    # Recoding trades nulls for (coarser) real values.
    assert recode[1] <= paper[1]


@pytest.mark.parametrize("qi_selection",
                         ["most-risky-first", "fixed-order"])
def test_ablation_qi_selection(benchmark, qi_selection):
    benchmark.pedantic(
        run_cycle, kwargs={"qi_selection": qi_selection},
        rounds=1, iterations=1,
    )


if __name__ == "__main__":
    emit(render_table(
        f"Heuristic ablation on {CODE}",
        ["configuration", "nulls", "info loss", "utility loss",
         "iterations"],
        ablation_rows(),
    ))
