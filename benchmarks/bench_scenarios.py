"""Schema independence across RDC scenarios (desideratum ii).

The same framework code anonymizes three structurally different
microdata DBs — the firm survey (Figure 1 shape), a household income
survey (individuals nested in households) and a housing-market deed
register — with no per-schema code.  Household risk runs the
Section 4.4 cluster propagation over the household attribute.
"""

import pytest

from repro.anonymize import (
    AnonymizationCycle,
    LocalSuppression,
    RecodeThenSuppress,
)
from repro.business import anonymize_households
from repro.data import (
    household_hierarchy,
    household_survey,
    housing_hierarchy,
    housing_market,
)
from repro.risk import KAnonymityRisk

from paperfig import dataset, emit, render_table


def scenario_rows():
    firm = dataset("R25A4W")
    households = household_survey(households=300, seed=11)
    housing = housing_market(transactions=800, seed=11)

    rows = []
    for label, db, method in (
        ("firm survey (R25A4W)", firm, LocalSuppression()),
        ("household income", households,
         RecodeThenSuppress(household_hierarchy())),
        ("housing market", housing,
         RecodeThenSuppress(housing_hierarchy())),
    ):
        risky = len(
            KAnonymityRisk(k=2).assess(db).risky_indices(0.5)
        )
        result = AnonymizationCycle(
            KAnonymityRisk(k=2), method, threshold=0.5
        ).run(db)
        rows.append([
            label,
            len(db),
            len(db.quasi_identifiers),
            risky,
            result.nulls_injected,
            result.recoded_cells,
            result.converged,
        ])

    # Household-level risk: the whole household inherits its riskiest
    # member's exposure.
    grouped = anonymize_households(
        households,
        "HouseholdId",
        KAnonymityRisk(k=2),
        LocalSuppression(),
    )
    rows.append([
        "household income (household-level risk)",
        len(households),
        len(households.quasi_identifiers),
        len(grouped.initial_risky),
        grouped.nulls_injected,
        grouped.recoded_cells,
        grouped.converged,
    ])
    return rows


def test_scenarios_report(benchmark):
    rows = benchmark.pedantic(scenario_rows, rounds=1, iterations=1)
    emit(render_table(
        "Schema independence: one framework, three microdata DBs",
        ["scenario", "rows", "QIs", "risky(k=2)", "nulls", "recoded",
         "converged"],
        rows,
    ))
    assert all(row[-1] for row in rows)


if __name__ == "__main__":
    emit(render_table(
        "Schema independence: one framework, three microdata DBs",
        ["scenario", "rows", "QIs", "risky(k=2)", "nulls", "recoded",
         "converged"],
        scenario_rows(),
    ))
