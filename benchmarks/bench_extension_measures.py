"""Extension — the measure family side by side.

Not a paper figure: compares every registered risk measure (including
the differential-privacy-inspired extension of Section 6's future work)
on the same dataset: risky-tuple counts, anonymization effort and
estimation time.  Useful to pick a measure/threshold pair in practice.
"""

import time

import pytest

from repro.anonymize import AnonymizationCycle, LocalSuppression
from repro.risk import (
    DifferentialRisk,
    IndividualRisk,
    KAnonymityRisk,
    LDiversityRisk,
    ReidentificationRisk,
    SudaRisk,
    TClosenessRisk,
)

from paperfig import dataset, emit, render_table

CODE = "R25A4U"

MEASURES = [
    ("k-anonymity k=2", KAnonymityRisk(k=2), 0.5),
    ("k-anonymity k=3", KAnonymityRisk(k=3), 0.5),
    ("suda k=3", SudaRisk(k=3), 0.5),
    ("reidentification", ReidentificationRisk(), 0.02),
    ("individual (series)", IndividualRisk(mode="series"), 0.02),
    ("differential eps=0.7", DifferentialRisk(epsilon=0.7), 0.5),
    ("differential eps=0.3", DifferentialRisk(epsilon=0.3), 0.5),
    ("l-diversity l=2 (Growth)",
     LDiversityRisk(sensitive="Growth6mos", l=2), 0.5),
    ("t-closeness t=0.9 (Growth)",
     TClosenessRisk(sensitive="Growth6mos", t=0.9), 0.5),
]


def measure_rows():
    db = dataset(CODE)
    rows = []
    for label, measure, threshold in MEASURES:
        start = time.perf_counter()
        report = measure.assess(db)
        assess_time = time.perf_counter() - start
        risky = len(report.risky_indices(threshold))
        cycle = AnonymizationCycle(
            measure, LocalSuppression(), threshold=threshold
        )
        result = cycle.run(db)
        rows.append([
            label,
            threshold,
            risky,
            result.nulls_injected,
            result.converged,
            round(assess_time, 4),
        ])
    return rows


def test_extension_measures_report(benchmark):
    rows = benchmark.pedantic(measure_rows, rounds=1, iterations=1)
    emit(render_table(
        f"Risk-measure family on {CODE}",
        ["measure", "T", "risky", "nulls", "converged", "assess s"],
        rows,
    ))
    by_label = {row[0]: row for row in rows}
    # Stricter settings flag at least as many tuples.
    assert by_label["k-anonymity k=3"][2] >= by_label["k-anonymity k=2"][2]
    assert (
        by_label["differential eps=0.3"][2]
        >= by_label["differential eps=0.7"][2]
    )
    # Every cycle converged.
    assert all(row[4] for row in rows)


@pytest.mark.parametrize(
    "label", ["k-anonymity k=2", "differential eps=0.7"]
)
def test_extension_measure_assess(benchmark, label):
    entry = next(m for m in MEASURES if m[0] == label)
    db = dataset(CODE)
    benchmark.pedantic(entry[1].assess, args=(db,), rounds=2,
                       iterations=1)


if __name__ == "__main__":
    emit(render_table(
        f"Risk-measure family on {CODE}",
        ["measure", "T", "risky", "nulls", "converged", "assess s"],
        measure_rows(),
    ))
