"""Figure 7b — information loss by k-anonymity threshold.

Same setting as Figure 7a; the metric is injected nulls weighed by the
maximum removable values (QI cells of the initially risky tuples).
Expected shape: W and U roughly flat and low; V highest at small k and
*decreasing* as runs get less tolerant, because nulls collapse distinct
risky combinations (the "extremely positive guarantee" the paper
highlights).
"""

import pytest

from repro.anonymize import AnonymizationCycle, LocalSuppression
from repro.risk import KAnonymityRisk

from paperfig import dataset, emit, render_table

DATASETS = ("R25A4W", "R25A4U", "R25A4V")
K_VALUES = (2, 3, 4, 5)


def loss_for(code: str, k: int) -> float:
    cycle = AnonymizationCycle(
        KAnonymityRisk(k=k),
        LocalSuppression(),
        threshold=0.5,
        tuple_ordering="less-significant-first",
    )
    return cycle.run(dataset(code)).information_loss


def figure7b_rows():
    return [
        [k] + [round(loss_for(code, k), 4) for code in DATASETS]
        for k in K_VALUES
    ]


@pytest.mark.parametrize("code", DATASETS)
def test_fig7b_loss(benchmark, code):
    benchmark.pedantic(loss_for, args=(code, 2), rounds=1, iterations=1)


def test_fig7b_report(benchmark):
    rows = benchmark.pedantic(figure7b_rows, rounds=1, iterations=1)
    emit(render_table(
        "Figure 7b: information loss by k-anonymity threshold",
        ["k"] + list(DATASETS),
        rows,
    ))
    losses = {code: [row[i + 1] for row in rows]
              for i, code in enumerate(DATASETS)}
    # Shape: all losses bounded well below total suppression; the
    # greedy approach keeps W/U in a narrow band.
    for code in DATASETS:
        assert max(losses[code]) < 0.6
    assert max(losses["R25A4W"]) < 0.45
    # The paper's headline: V starts clearly higher than W at k=2 and
    # *drops* with less tolerant runs (risky tuples collapse onto
    # shared combinations once nulls appear).
    assert losses["R25A4V"][0] > losses["R25A4W"][0]
    assert losses["R25A4V"][-1] < losses["R25A4V"][0]


if __name__ == "__main__":
    emit(render_table(
        "Figure 7b: information loss by k-anonymity threshold",
        ["k"] + list(DATASETS),
        figure7b_rows(),
    ))
