"""Figure 7f — execution time by number of quasi-identifiers.

Paper setting: R50A4W .. R50A9W (fixed 50k rows, 4-9 QIs, real-world
distribution), same thresholds as Figure 7e.  Expected shape:
individual risk and k-anonymity are only marginally affected by the
number of QIs (they group on exactly the full combination), while SUDA
grows but without combinatorial blow-up — the ascending-size MSU
search stops at the threshold, preempting redundant combinations (the
declarative analogue of the greedy Rule 7 activation).
"""

import time

import pytest

from repro.risk import IndividualRisk, KAnonymityRisk, SudaRisk

from paperfig import dataset, emit, engine_kanon_seconds, render_table

SIZES = ("R50A4W", "R50A5W", "R50A6W", "R50A8W", "R50A9W")
MEASURES = ("individual", "k-anonymity", "suda")


def make_measure(name: str):
    if name == "k-anonymity":
        return KAnonymityRisk(k=2)
    if name == "individual":
        return IndividualRisk(mode="sampled", samples=200)
    if name == "suda":
        return SudaRisk(k=3)
    raise ValueError(name)


def risk_time(code: str, measure_name: str) -> float:
    db = dataset(code)
    measure = make_measure(measure_name)
    start = time.perf_counter()
    measure.assess(db)
    return time.perf_counter() - start


def figure7f_rows():
    rows = []
    for code in SIZES:
        db = dataset(code)
        row = [code, len(db.quasi_identifiers)]
        for measure_name in MEASURES:
            row.append(round(risk_time(code, measure_name), 4))
        rows.append(row)
    return rows


def engine_rows(sizes=SIZES):
    """k-anonymity through the chase engine across the QI grid,
    compiled plans vs the legacy enumerator vs the columnar batch
    backend."""
    rows = []
    for code in sizes:
        db = dataset(code)
        planned = engine_kanon_seconds(code, use_plans=True)
        legacy = engine_kanon_seconds(code, use_plans=False)
        columnar = engine_kanon_seconds(
            code, use_plans=True, columnar=True)
        rows.append([
            code, len(db.quasi_identifiers),
            round(planned, 4), round(legacy, 4), round(columnar, 4),
            round(legacy / planned, 2),
            round(planned / columnar, 2),
        ])
    return rows


def record_engine_history():
    """Append planned/legacy/columnar engine timings at the widest QI
    set to the bench trajectory (the regress.py ``engine_fig7f``
    workload)."""
    from bench_tracker import record_history_entry

    widest = SIZES[-1]
    planned = engine_kanon_seconds(widest, use_plans=True)
    legacy = engine_kanon_seconds(widest, use_plans=False)
    columnar = engine_kanon_seconds(widest, use_plans=True, columnar=True)
    return record_history_entry(
        "engine_fig7f",
        {"planned_seconds": planned, "legacy_seconds": legacy,
         "columnar_seconds": columnar},
        extra={"dataset": widest},
    )


def test_fig7f_engine_planned_matches_legacy(benchmark):
    rows = benchmark.pedantic(
        engine_rows, args=(("R50A4W",),), rounds=1, iterations=1
    )
    emit(render_table(
        "Figure 7f (engine path): k-anonymity via chase, "
        "plans vs legacy vs columnar",
        ["dataset", "QIs", "planned/s", "legacy/s", "columnar/s",
         "plan-speedup", "col-speedup"],
        rows,
    ))
    assert all(row[2] > 0 and row[3] > 0 and row[4] > 0 for row in rows)


@pytest.mark.parametrize("code", ("R50A4W", "R50A9W"))
@pytest.mark.parametrize("measure_name", MEASURES)
def test_fig7f_by_attrs(benchmark, code, measure_name):
    db = dataset(code)
    measure = make_measure(measure_name)
    benchmark.pedantic(measure.assess, args=(db,), rounds=2, iterations=1)


def test_fig7f_report(benchmark):
    rows = benchmark.pedantic(figure7f_rows, rounds=1, iterations=1)
    emit(render_table(
        "Figure 7f: risk-estimation seconds by number of QIs",
        ["dataset", "QIs"] + [m for m in MEASURES],
        rows,
    ))
    # Shape: no combinatorial blow-up — going from 4 to 9 QIs must not
    # increase SUDA's time by more than the polynomial subset growth
    # (C(9,<=3)=129 vs C(4,<=3)=14, i.e. < ~12x with generous slack).
    suda_col = 2 + MEASURES.index("suda")
    assert rows[-1][suda_col] < max(rows[0][suda_col], 1e-4) * 40
    # k-anonymity stays in the same order of magnitude.
    k_col = 2 + MEASURES.index("k-anonymity")
    assert rows[-1][k_col] < max(rows[0][k_col], 1e-4) * 12


if __name__ == "__main__":
    emit(render_table(
        "Figure 7f: risk-estimation seconds by number of QIs",
        ["dataset", "QIs"] + [m for m in MEASURES],
        figure7f_rows(),
    ))
