"""Figure 6 — the dataset grid.

Regenerates the table of the twelve experimental datasets (code,
attributes, tuples, distribution, provenance tag) and benchmarks the
generator itself.
"""

import pytest

from repro.data import FIGURE6_GRID, generate_dataset, parse_spec
from repro.risk import KAnonymityRisk

from paperfig import SCALE, SEED, dataset, emit, render_table


def figure6_rows():
    rows = []
    for code, tag in FIGURE6_GRID:
        spec = parse_spec(code)
        db = dataset(code)
        risky = len(KAnonymityRisk(k=2).assess(db).risky_indices(0.5))
        rows.append(
            [
                code,
                spec.attributes,
                f"{spec.rows // 1000}k",
                spec.profile.code,
                tag,
                len(db),
                risky,
            ]
        )
    return rows


def test_fig6_generation(benchmark):
    benchmark.pedantic(
        generate_dataset,
        args=("R25A4W",),
        kwargs={"seed": SEED, "scale": SCALE},
        rounds=2,
        iterations=1,
    )


def test_fig6_report(benchmark):
    rows = benchmark.pedantic(figure6_rows, rounds=1, iterations=1)
    emit(render_table(
        "Figure 6: datasets used in the experimental settings "
        f"(scale 1/{SCALE})",
        ["Dataset", "No. Att.", "No. Tuples", "Dist.", "Data",
         "rows(run)", "risky(k=2)"],
        rows,
    ))
    assert len(rows) == 12


if __name__ == "__main__":
    emit(render_table(
        "Figure 6: datasets used in the experimental settings",
        ["Dataset", "No. Att.", "No. Tuples", "Dist.", "Data",
         "rows(run)", "risky(k=2)"],
        figure6_rows(),
    ))
