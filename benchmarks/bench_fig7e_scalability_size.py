"""Figure 7e — execution time by dataset size and risk technique.

Paper setting: unbalanced datasets R6A4U, R12A4U, R25A4U, R50A4U,
R100A4U; three risk techniques (individual risk, k-anonymity, SUDA);
k = 2 for k-anonymity, MSU threshold 3 for SUDA, T = 0.5.  Both the
full anonymization-cycle time and the risk-estimation-only time are
measured.  Expected shape: risk estimation dominates total time;
k-anonymity is cheapest and roughly linear; individual risk with the
library-sampled negative binomial is costlier (library interaction
overhead); SUDA is the most expensive.
"""

import time

import pytest

from repro.anonymize import AnonymizationCycle, LocalSuppression
from repro.risk import IndividualRisk, KAnonymityRisk, SudaRisk

from paperfig import dataset, emit, engine_kanon_seconds, render_table

SIZES = ("R6A4U", "R12A4U", "R25A4U", "R50A4U", "R100A4U")


def make_measure(name: str):
    if name == "k-anonymity":
        return KAnonymityRisk(k=2)
    if name == "individual":
        # The paper plugged an off-the-shelf statistical library and
        # sampled from the actual negative binomial: the costly trend.
        return IndividualRisk(mode="sampled", samples=200)
    if name == "suda":
        return SudaRisk(k=3)
    raise ValueError(name)


MEASURES = ("individual", "k-anonymity", "suda")


def risk_only(code: str, measure_name: str) -> float:
    db = dataset(code)
    measure = make_measure(measure_name)
    start = time.perf_counter()
    measure.assess(db)
    return time.perf_counter() - start


def full_cycle(code: str, measure_name: str) -> float:
    db = dataset(code)
    cycle = AnonymizationCycle(
        make_measure(measure_name),
        LocalSuppression(),
        threshold=0.5,
    )
    start = time.perf_counter()
    cycle.run(db)
    return time.perf_counter() - start


def figure7e_rows():
    rows = []
    for code in SIZES:
        row = [code, len(dataset(code))]
        for measure_name in MEASURES:
            row.append(round(full_cycle(code, measure_name), 4))
            row.append(round(risk_only(code, measure_name), 4))
        rows.append(row)
    return rows


def engine_rows(sizes=SIZES):
    """k-anonymity through the chase engine across the size grid,
    compiled plans vs the legacy enumerator vs the columnar batch
    backend."""
    rows = []
    for code in sizes:
        planned = engine_kanon_seconds(code, use_plans=True)
        legacy = engine_kanon_seconds(code, use_plans=False)
        columnar = engine_kanon_seconds(
            code, use_plans=True, columnar=True)
        rows.append([
            code, len(dataset(code)),
            round(planned, 4), round(legacy, 4), round(columnar, 4),
            round(legacy / planned, 2),
            round(planned / columnar, 2),
        ])
    return rows


def record_engine_history():
    """Append planned/legacy/columnar engine timings at the largest
    size to the bench trajectory (the regress.py ``engine_fig7e``
    workload)."""
    from bench_tracker import record_history_entry

    largest = SIZES[-1]
    planned = engine_kanon_seconds(largest, use_plans=True)
    legacy = engine_kanon_seconds(largest, use_plans=False)
    columnar = engine_kanon_seconds(largest, use_plans=True, columnar=True)
    return record_history_entry(
        "engine_fig7e",
        {"planned_seconds": planned, "legacy_seconds": legacy,
         "columnar_seconds": columnar},
        extra={"dataset": largest},
    )


@pytest.mark.parametrize("measure_name", MEASURES)
@pytest.mark.parametrize("code", ("R6A4U", "R25A4U"))
def test_fig7e_risk_estimation(benchmark, code, measure_name):
    db = dataset(code)
    measure = make_measure(measure_name)
    benchmark.pedantic(
        measure.assess, args=(db,), rounds=2, iterations=1
    )


@pytest.mark.parametrize("measure_name", MEASURES)
def test_fig7e_full_cycle(benchmark, measure_name):
    benchmark.pedantic(
        full_cycle, args=("R25A4U", measure_name), rounds=1, iterations=1
    )


def test_fig7e_engine_planned_matches_legacy(benchmark):
    # Same riskOutput either way; the speedup itself is tracked by the
    # regress.py engine_fig7e workload, not asserted here (CI noise).
    rows = benchmark.pedantic(
        engine_rows, args=(("R6A4U", "R25A4U"),), rounds=1, iterations=1
    )
    emit(render_table(
        "Figure 7e (engine path): k-anonymity via chase, "
        "plans vs legacy vs columnar",
        ["dataset", "rows", "planned/s", "legacy/s", "columnar/s",
         "plan-speedup", "col-speedup"],
        rows,
    ))
    assert all(row[2] > 0 and row[3] > 0 and row[4] > 0 for row in rows)


def test_fig7e_report(benchmark):
    rows = benchmark.pedantic(figure7e_rows, rounds=1, iterations=1)
    columns = ["dataset", "rows"]
    for measure_name in MEASURES:
        columns += [f"{measure_name}/total", f"{measure_name}/risk"]
    emit(render_table(
        "Figure 7e: elapsed seconds by dataset size and risk technique",
        columns,
        rows,
    ))
    # Shape: time grows with size for every technique (compare the
    # smallest and largest datasets).
    for column in range(2, len(columns)):
        assert rows[-1][column] >= rows[0][column] * 0.5
    # SUDA total >= k-anonymity total on the largest dataset.
    last = rows[-1]
    k_total = last[2 + 2 * MEASURES.index("k-anonymity")]
    suda_total = last[2 + 2 * MEASURES.index("suda")]
    assert suda_total >= k_total


if __name__ == "__main__":
    columns = ["dataset", "rows"]
    for measure_name in MEASURES:
        columns += [f"{measure_name}/total", f"{measure_name}/risk"]
    emit(render_table(
        "Figure 7e: elapsed seconds by dataset size and risk technique",
        columns,
        figure7e_rows(),
    ))
