"""Figure 7c — maybe-matching vs standard labelled-null semantics.

Same anonymization setting as Figure 7a, run under both null-match
semantics.  Expected shape: the standard (Skolem) semantics makes
suppressed tuples permanently unique, so nulls proliferate (the paper
calls it "in fact unusable in this setting"), while maybe-match keeps
the counts near-minimal.
"""

import pytest

from repro.anonymize import AnonymizationCycle, LocalSuppression
from repro.model import MAYBE_MATCH, STANDARD
from repro.risk import KAnonymityRisk

from paperfig import dataset, emit, render_table

DATASETS = ("R25A4W", "R25A4U", "R25A4V")
K_VALUES = (2, 3, 4, 5)


def nulls_for(code: str, k: int, semantics) -> int:
    cycle = AnonymizationCycle(
        KAnonymityRisk(k=k),
        LocalSuppression(),
        threshold=0.5,
        semantics=semantics,
        tuple_ordering="less-significant-first",
    )
    return cycle.run(dataset(code)).nulls_injected


def figure7c_rows():
    rows = []
    for k in K_VALUES:
        row = [k]
        for code in DATASETS:
            row.append(nulls_for(code, k, MAYBE_MATCH))
            row.append(nulls_for(code, k, STANDARD))
        rows.append(row)
    return rows


@pytest.mark.parametrize("semantics", ["maybe-match", "standard"])
def test_fig7c_semantics(benchmark, semantics):
    chosen = MAYBE_MATCH if semantics == "maybe-match" else STANDARD
    benchmark.pedantic(
        nulls_for, args=("R25A4U", 2, chosen), rounds=1, iterations=1
    )


def test_fig7c_report(benchmark):
    rows = benchmark.pedantic(figure7c_rows, rounds=1, iterations=1)
    columns = ["k"]
    for code in DATASETS:
        columns += [f"{code}/maybe", f"{code}/std"]
    emit(render_table(
        "Figure 7c: nulls injected, maybe-match vs standard semantics",
        columns,
        rows,
    ))
    # Shape: per dataset and k, standard needs at least as many nulls,
    # and strictly more in aggregate (symbol proliferation).
    total_maybe = total_std = 0
    for row in rows:
        values = row[1:]
        for index in range(0, len(values), 2):
            maybe, std = values[index], values[index + 1]
            assert std >= maybe
            total_maybe += maybe
            total_std += std
    assert total_std > total_maybe


if __name__ == "__main__":
    columns = ["k"]
    for code in DATASETS:
        columns += [f"{code}/maybe", f"{code}/std"]
    emit(render_table(
        "Figure 7c: nulls injected, maybe-match vs standard semantics",
        columns,
        figure7c_rows(),
    ))
