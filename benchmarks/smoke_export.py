"""Export smoke check — used by the CI telemetry-bench job and
runnable locally.

Runs a full VadaSA exchange (assess -> anonymize -> share) and a
recursive chase program with the event stream, then asserts the whole
export surface holds together:

* the Prometheus exposition passes the line-format validator (file
  export AND a live ``http.server`` scrape of ``/metrics``);
* the event JSONL replays into a summary identical to the live log's
  (decision/span/lifecycle/metrics events, gap-free sequence);
* the OTLP/JSON span document is well-formed and covers the trace;
* the per-rule cost profile attributes non-zero time to the chase
  rules.

Artifacts land in ``benchmarks/results/export/`` so CI can upload
them:

    PYTHONPATH=src python benchmarks/smoke_export.py
"""

import json
import sys
import urllib.request
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from repro import telemetry  # noqa: E402
from repro.data import generate_dataset  # noqa: E402
from repro.framework import VadaSA  # noqa: E402
from repro.vadalog import Program  # noqa: E402

OUTPUT_DIR = Path(__file__).parent / "results" / "export"

RECURSIVE_PROGRAM = """
edge(a, b). edge(b, c). edge(c, d). edge(d, a).
@label("base").
path(X, Y) :- edge(X, Y).
@label("step").
path(X, Z) :- path(X, Y), edge(Y, Z).
@label("mint").
contact(X, C) :- edge(X, _).
"""


def main() -> int:
    OUTPUT_DIR.mkdir(parents=True, exist_ok=True)
    events_path = OUTPUT_DIR / "events.jsonl"
    prom_path = OUTPUT_DIR / "metrics.prom"
    otlp_path = OUTPUT_DIR / "spans.otlp.json"
    events_path.unlink(missing_ok=True)

    telemetry.enable(events_path=str(events_path))
    log = telemetry.events()
    try:
        # Chase workload (per-rule attribution + derive events).
        Program.parse(RECURSIVE_PROGRAM).run()
        # Full exchange workload (decision + lifecycle events).
        db = generate_dataset("R6A4U", seed=20210323, scale=25)
        vada = VadaSA()
        vada.register(db)
        vada.assess(db.name, measure="k-anonymity", k=2)
        shared = vada.share(db.name, measure="k-anonymity", k=2)
        assert len(shared) == len(db), "share changed the row count"

        # Prometheus: file export + live scrape, both validated.
        text = telemetry.write_prometheus(str(prom_path))
        samples = telemetry.validate_prometheus_text(text)
        assert samples > 20, f"suspiciously few samples ({samples})"
        with telemetry.MetricsHTTPServer(port=0) as server:
            with urllib.request.urlopen(
                f"http://127.0.0.1:{server.port}/metrics", timeout=5
            ) as response:
                scraped = response.read().decode("utf-8")
        scraped_samples = telemetry.validate_prometheus_text(scraped)
        assert scraped_samples == samples, (
            f"scrape returned {scraped_samples} samples, file export "
            f"{samples}"
        )

        # OTLP span export.
        document = telemetry.write_otlp_spans(str(otlp_path))
        otlp_spans = document["resourceSpans"][0]["scopeSpans"][0]["spans"]
        assert otlp_spans, "no spans exported"
        assert all(len(s["spanId"]) == 16 and len(s["traceId"]) == 32
                   for s in otlp_spans)
        json.loads(otlp_path.read_text())  # well-formed on disk

        # Rule attribution saw the chase.
        profile = telemetry.rule_profile()
        assert profile.rule("step") is not None, "rule 'step' unattributed"
        assert profile.total_ns > 0, "no time attributed to rules"
        report = profile.render(top=5)
        assert "step" in report
    finally:
        telemetry.disable()

    # Event stream round-trip: the file tells the same story the live
    # log folded (disable() appended the final metrics snapshot).
    live_summary = log.summary()
    replayed = telemetry.replay(str(events_path))
    assert replayed == live_summary, (
        "replayed summary differs from live summary:\n"
        f"live:     {json.dumps(live_summary, sort_keys=True)}\n"
        f"replayed: {json.dumps(replayed, sort_keys=True)}"
    )
    decisions = replayed["decisions"]
    assert decisions["by_kind"].get("suppress", 0) > 0, (
        "exchange produced no suppress decisions"
    )
    assert decisions["by_kind"].get("derive", 0) > 0, (
        "chase produced no derive decisions"
    )
    assert replayed["lifecycle"].get("share") == 1
    assert replayed["spans"]["total"] > 0
    assert replayed["counters"].get("cycle.runs", 0) > 0

    telemetry.reset()
    print(f"export smoke OK: {replayed['events']} events "
          f"({decisions['total']} decisions, "
          f"{replayed['spans']['total']} spans), "
          f"{samples} Prometheus samples, "
          f"{len(otlp_spans)} OTLP spans -> {OUTPUT_DIR}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
