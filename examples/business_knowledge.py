"""Business-knowledge anonymization (Section 4.4 / Algorithm 9).

Disclosure risk propagates along company-control links: re-identifying
one company of a group makes the others easy to re-identify, so every
member of a control cluster carries the combined risk
1 - prod(1 - rho).  This example:

1. builds a company-ownership graph with direct and *joint* control
   (the recursive msum rule);
2. evaluates the control closure both natively and with the Vadalog
   rules on the reasoning engine (they must agree);
3. runs the plain vs the cluster-enhanced anonymization cycle and
   compares the suppression effort;
4. shows the global-recoding alternative over the Italian geography
   hierarchy.

Run:  python examples/business_knowledge.py
"""

from repro import VadaSA
from repro.anonymize import LocalSuppression, anonymize
from repro.business import (
    OwnershipGraph,
    anonymize_with_business_knowledge,
    clusters_for_db,
)
from repro.data import city_fragment, generate_dataset, ownership_for_db
from repro.model import DomainHierarchy
from repro.risk import KAnonymityRisk
from repro.vadalog import Program
from repro.vadalog_programs import OWNERSHIP_CONTROL


def banner(text):
    print(f"\n=== {text} " + "=" * max(0, 60 - len(text)))


def main():
    # ------------------------------------------------------------------
    banner("1. Company control: direct and joint ownership")
    graph = OwnershipGraph(
        [
            ("HoldCo", "AlphaBank", 0.62),     # direct control
            ("HoldCo", "BetaFin", 0.55),       # direct control
            ("AlphaBank", "GammaIns", 0.30),   # jointly...
            ("BetaFin", "GammaIns", 0.25),     # ...controlled
            ("GammaIns", "DeltaRE", 0.80),     # transitive
            ("Outsider", "AlphaBank", 0.10),   # minority: no control
        ]
    )
    closure = graph.control_relation()
    print("control pairs (native fixpoint):")
    for controller, controlled in sorted(closure):
        print(f"  {controller} -> {controlled}")

    banner("2. The same closure on the Vadalog engine")
    print(OWNERSHIP_CONTROL)
    program = Program.parse(OWNERSHIP_CONTROL)
    result = program.run(graph.to_facts())
    engine_pairs = {(x, y) for x, y in result.tuples("rel") if x != y}
    print("engine agrees with native fixpoint:",
          engine_pairs == closure)
    print("clusters:", graph.control_clusters())

    # ------------------------------------------------------------------
    banner("3. Plain vs cluster-enhanced anonymization (Fig. 7d)")
    db = generate_dataset("R25A4U", scale=25, seed=13)  # 1000 rows
    plain = anonymize(db, KAnonymityRisk(k=2), LocalSuppression())
    print(f"plain cycle:    {plain.nulls_injected} nulls, "
          f"{len(plain.initial_risky)} initially risky")

    for relationships in (4, 8, 16):
        ownership = ownership_for_db(db, relationships, seed=5)
        enhanced = anonymize_with_business_knowledge(
            db, ownership, KAnonymityRisk(k=2), LocalSuppression()
        )
        clusters = clusters_for_db(db, ownership)
        print(
            f"with ~{relationships:2d} control links -> "
            f"{len(clusters)} row clusters, "
            f"{enhanced.nulls_injected} nulls "
            f"(+{enhanced.nulls_injected - plain.nulls_injected})"
        )

    # ------------------------------------------------------------------
    banner("4. Global recoding over domain knowledge (Algorithm 8)")
    vada = VadaSA(hierarchy=DomainHierarchy.italian_geography())
    cities = city_fragment()
    vada.register(cities)
    recoded = vada.anonymize(
        cities.name,
        measure="k-anonymity",
        method="recode-then-suppress",
        k=2,
    )
    print(recoded)
    for step in recoded.steps:
        print("  ", step.explain())
    print("\nareas after recoding:",
          sorted({str(row["Area"]) for row in recoded.db.rows}))


if __name__ == "__main__":
    main()
