"""File-based exchange workflow (operations view).

What a data-provider team actually runs day to day: datasets live as
CSV + schema-sidecar files, risk gates run in a pipeline, the shared
view is written next to a utility report.  Everything here is also
available on the command line::

    python -m repro generate R12A4U --scale 10 -o survey.csv
    python -m repro assess survey.csv --measure k-anonymity --k 2
    python -m repro anonymize survey.csv --measure k-anonymity --k 2 \\
        -o shared.csv --trace

Run:  python examples/file_exchange.py
"""

import tempfile
from pathlib import Path

from repro import io as repro_io
from repro.anonymize import (
    AnonymizationCycle,
    LocalSuppression,
    UtilityReport,
)
from repro.data import generate_dataset
from repro.risk import DifferentialRisk, KAnonymityRisk


def banner(text):
    print(f"\n=== {text} " + "=" * max(0, 60 - len(text)))


def main():
    workdir = Path(tempfile.mkdtemp(prefix="vada-sa-"))
    print("working directory:", workdir)

    # ------------------------------------------------------------------
    banner("1. Provider side: export the survey to CSV + schema")
    survey = generate_dataset("R12A4U", scale=10, seed=2024)
    csv_path = workdir / "survey.csv"
    repro_io.save_csv(survey, csv_path)
    print(f"wrote {csv_path} ({len(survey)} rows) and "
          f"{csv_path.with_suffix('.schema.json').name}")

    # ------------------------------------------------------------------
    banner("2. Risk gate: refuse to ship risky files")
    db = repro_io.load_csv(csv_path)
    gate = KAnonymityRisk(k=2)
    report = gate.assess(db)
    risky = report.risky_indices(0.5)
    print(f"gate verdict: {len(risky)} risky tuples -> "
          f"{'BLOCKED' if risky else 'PASS'}")

    # ------------------------------------------------------------------
    banner("3. Anonymize and re-gate")
    cycle = AnonymizationCycle(gate, LocalSuppression(), threshold=0.5)
    result = cycle.run(db)
    print(f"cycle: nulls={result.nulls_injected}, "
          f"loss={result.information_loss:.1%}, "
          f"converged={result.converged}")
    shared = result.shared_view()
    shared_path = workdir / "shared.csv"
    repro_io.save_csv(shared, shared_path)
    regate = gate.assess(repro_io.load_csv(shared_path))
    print(f"re-gate on {shared_path.name}: "
          f"{len(regate.risky_indices(0.5))} risky tuples")

    # ------------------------------------------------------------------
    banner("4. Utility report shipped with the data")
    utility = UtilityReport(
        db, result.db, numeric_attributes=["Growth6mos"]
    )
    print(utility)
    for attribute, distance in sorted(utility.marginals.items()):
        print(f"  marginal TV {attribute!r}: {distance:.4f}")
    print(f"  weighted-mean shift of Growth6mos: "
          f"{utility.mean_shifts['Growth6mos']:.2e}")

    # ------------------------------------------------------------------
    banner("5. A second gate for a stricter counterparty")
    strict = DifferentialRisk(epsilon=0.4)
    strict_report = strict.assess(repro_io.load_csv(shared_path))
    strict_risky = strict_report.risky_indices(0.5)
    print(f"differential gate (eps=0.4): {len(strict_risky)} risky; "
          "tighter recipients may require another cycle pass")


if __name__ == "__main__":
    main()
