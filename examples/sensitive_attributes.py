"""Sensitive-attribute protection: beyond re-identification.

k-anonymity stops an attacker from singling a respondent out — but a
homogeneous group leaks its members' sensitive value without
identifying anyone (the homogeneity attack), and a skewed group leaks
probabilistic information (the skewness attack).  This walkthrough
shows the extension measures catching both on a loan-performance
dataset, and the anonymization cycle fixing them:

1. build a small corporate-loan dataset where one region/sector group
   is all-defaulting;
2. show it is 3-anonymous yet fails l-diversity;
3. show a large-but-skewed group passing l-diversity yet failing
   t-closeness;
4. run the cycle with each measure and compare the suppression bills.

Run:  python examples/sensitive_attributes.py
"""

from repro.anonymize import LocalSuppression, anonymize
from repro.model import MicrodataDB, survey_schema
from repro.risk import KAnonymityRisk, LDiversityRisk, TClosenessRisk


def banner(text):
    print(f"\n=== {text} " + "=" * max(0, 60 - len(text)))


def build_loans() -> MicrodataDB:
    rows = []

    def add(n, area, sector, status):
        for _ in range(n):
            rows.append(
                {"Area": area, "Sector": sector, "LoanStatus": status}
            )

    # A perfectly balanced background population...
    add(10, "North", "Commerce", "performing")
    add(10, "North", "Commerce", "default")
    add(10, "Center", "Services", "performing")
    add(10, "Center", "Services", "default")
    # ...one homogeneous group (everyone defaulted!)...
    add(4, "South", "Textiles", "default")
    # ...and one big but heavily skewed group.
    add(18, "South", "Commerce", "default")
    add(2, "South", "Commerce", "performing")

    schema = survey_schema(
        quasi_identifiers=["Area", "Sector"],
        non_identifying=["LoanStatus"],
    )
    return MicrodataDB("Loans", schema, rows)


def main():
    db = build_loans()
    print(db)

    # ------------------------------------------------------------------
    banner("1. k-anonymity is satisfied")
    k_report = KAnonymityRisk(k=3).assess(db)
    print(f"3-anonymity risky tuples: {len(k_report.risky_indices(0.5))}"
          "  (every group has >= 4 members)")

    # ------------------------------------------------------------------
    banner("2. ... but the homogeneity attack works (l-diversity)")
    l_measure = LDiversityRisk(sensitive="LoanStatus", l=2)
    l_report = l_measure.assess(db)
    risky = l_report.risky_indices(0.5)
    print(f"l-diversity (l=2) flags {len(risky)} tuples")
    print("example:", l_report.explain(risky[0]))
    print("-> anyone known to be a South/Textiles borrower is a "
          "defaulter, no re-identification needed.")

    # ------------------------------------------------------------------
    banner("3. ... and the skewness attack too (t-closeness)")
    t_measure = TClosenessRisk(sensitive="LoanStatus", t=0.2)
    t_report = t_measure.assess(db)
    flagged = set(t_report.risky_indices(0.5))
    south_commerce = {
        i for i, row in enumerate(db.rows)
        if (row["Area"], row["Sector"]) == ("South", "Commerce")
    }
    print(f"t-closeness (t=0.2) flags {len(flagged)} tuples, "
          f"including all {len(south_commerce & flagged)} of the "
          "90%-default South/Commerce group")

    # ------------------------------------------------------------------
    banner("4. The same cycle fixes each requirement")
    for label, measure in [
        ("k-anonymity k=3", KAnonymityRisk(k=3)),
        ("l-diversity l=2", l_measure),
        ("t-closeness t=0.2", t_measure),
    ]:
        result = anonymize(db, measure, LocalSuppression())
        final = measure.assess(result.db)
        print(
            f"{label:20s} nulls={result.nulls_injected:3d}  "
            f"converged={result.converged}  residual risky="
            f"{len(final.risky_indices(0.5))}"
        )
    print("\nStricter semantics cost more suppression — the framework "
          "makes the trade-off explicit and explainable.")


if __name__ == "__main__":
    main()
