"""Research Data Center scenario (Section 2).

A financial authority wants to share a survey microdata DB with a
university while keeping respondent identities confidential:

1. a new microdata DB arrives with *uncategorized* attributes — the
   experience-based categorizer (Algorithm 1) labels them, with a
   human-in-the-loop resolution for the one it cannot place;
2. the statistical disclosure risk is evaluated preemptively;
3. the anonymization cycle runs until the k-anonymity requirement
   holds;
4. the exchange is validated by simulating the Section 2.2
   re-identification attack against a synthetic identity oracle,
   before and after anonymization.

Run:  python examples/research_data_center.py
"""

from repro import AttributeCategory, VadaSA
from repro.attack import LinkageAttacker, evaluate_attack, ground_truth
from repro.data import generate_dataset, generate_oracle
from repro.risk import KAnonymityRisk


def banner(text):
    print(f"\n=== {text} " + "=" * max(0, 60 - len(text)))


def main():
    vada = VadaSA()

    # ------------------------------------------------------------------
    banner("1. A survey arrives with uncategorized attributes")
    survey = generate_dataset("R12A4U", scale=10, seed=77)  # 1200 rows
    raw_attributes = [
        ("Id", "Company identifier"),
        ("Area", "Geographic area"),
        ("Sector", "Product sector"),
        ("Employees", "Number of employees"),
        ("Residential Rev.", "Revenue from internal market"),
        ("Growth6mos", "Revenue growth, last 6 months"),
        ("Weight", "Sampling weight"),
    ]
    # Rename the generated columns to the survey's attribute names.
    renaming = dict(zip(
        ["Id", "Area", "Sector", "Employees", "Residential Rev.",
         "Growth6mos", "Weight"],
        survey.schema.attributes,
    ))
    rows = [
        {name: row[source] for name, source in renaming.items()}
        for row in survey.rows
    ]

    result = vada.register_uncategorized("RDC-survey", raw_attributes,
                                         rows)
    print("categorization:", result)
    for name in result.assigned:
        print("  ", result.explain(name))

    if not result.is_complete:
        banner("1b. Human in the loop resolves what experience cannot")
        for pending in list(result.pending):
            print(f"  analyst assigns {pending!r} -> Non-identifying")
            vada.dictionary.set_category(
                "RDC-survey", pending, AttributeCategory.NON_IDENTIFYING
            )
        vada.complete_registration("RDC-survey")

    db = vada.dataset("RDC-survey")
    print("registered:", db)

    # ------------------------------------------------------------------
    banner("2. Preemptive risk evaluation")
    report = vada.assess("RDC-survey", measure="k-anonymity", k=2)
    risky = report.risky_indices(0.5)
    print(f"{len(risky)} risky tuples out of {len(db)} (T=0.5, k=2)")
    if risky:
        print("example:", report.explain(risky[0]))

    # ------------------------------------------------------------------
    banner("3. Anonymization cycle")
    cycle = vada.anonymize("RDC-survey", measure="k-anonymity", k=2)
    print(cycle)
    print("nulls injected:   ", cycle.nulls_injected)
    print("information loss: ", f"{cycle.information_loss:.1%}")
    print("utility-weighted: ", f"{cycle.utility_weighted_loss:.3%}")

    # ------------------------------------------------------------------
    banner("4. Validate against the re-identification attack")
    oracle = generate_oracle(db, max_population=150_000)
    truth = ground_truth(db, oracle)
    rows_under_attack = [r for r in risky if r in truth]
    attacker = LinkageAttacker(oracle)

    before = evaluate_attack(attacker, db, truth, rows=rows_under_attack)
    after = evaluate_attack(attacker, cycle.db, truth,
                            rows=rows_under_attack)
    print(f"attack on {len(rows_under_attack)} risky tuples:")
    print(f"  before: {before.re_identified} re-identified, "
          f"mean cohort {before.mean_cohort:.1f}, "
          f"confidence {before.mean_confidence:.3f}")
    print(f"  after:  {after.re_identified} re-identified, "
          f"mean cohort {after.mean_cohort:.1f}, "
          f"confidence {after.mean_confidence:.3f}")

    banner("5. Ship it")
    shared = cycle.shared_view()
    print("shared view:", shared)
    print("attributes:", shared.schema.attributes)


if __name__ == "__main__":
    main()
