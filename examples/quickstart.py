"""Quickstart: the paper's running example end to end.

Loads the Inflation & Growth survey fragment (Figure 1), evaluates the
off-the-shelf risk measures of Section 4.2, runs the anonymization
cycle (Algorithm 2) with local suppression (Algorithm 7) and prints the
fully-explained trace — the Figure 5 walkthrough in executable form.

Run:  python examples/quickstart.py
"""

from repro import VadaSA
from repro.data import city_fragment, inflation_growth_fragment
from repro.risk import KAnonymityRisk


def banner(text):
    print(f"\n=== {text} " + "=" * max(0, 60 - len(text)))


def main():
    vada = VadaSA()

    # ------------------------------------------------------------------
    banner("1. Register the Inflation & Growth microdata DB (Figure 1)")
    ig = inflation_growth_fragment()
    vada.register(ig)
    print(ig)
    print("quasi-identifiers:", ig.quasi_identifiers)

    # ------------------------------------------------------------------
    banner("2. Preemptive risk evaluation (Section 4.2)")
    for measure, params in [
        ("reidentification", {}),
        ("k-anonymity", {"k": 2}),
        ("individual", {"mode": "series"}),
        ("suda", {"k": 3}),
    ]:
        report = vada.assess(ig.name, measure=measure, **params)
        risky = report.risky_indices(0.5)
        print(
            f"{measure:17s} max risk {report.max_score():.4f}   "
            f"risky tuples (T=0.5): {len(risky)}"
        )

    report = vada.assess(ig.name, measure="reidentification")
    print("\nThe paper's worked numbers:")
    print("  tuple 15:", f"{report.scores[14]:.3f}  (paper: 0.03)")
    print("  tuple  7:", f"{report.scores[6]:.4f} (paper: 0.003)")
    print("  tuple  4:", f"{report.scores[3]:.4f} (paper: 0.016)")

    # ------------------------------------------------------------------
    banner("3. The Figure 5 example: 7 companies, all QIs")
    cities = city_fragment()
    vada.register(cities)
    freqs = KAnonymityRisk(k=2).frequencies(cities)
    print("frequencies before:", freqs, " (Figure 5a: 1 2 2 2 2 1 1)")

    result = vada.anonymize(cities.name, measure="k-anonymity", k=2)
    print(f"\ncycle: {result}")
    print("frequencies after: ",
          KAnonymityRisk(k=2).frequencies(result.db),
          " (tuple 1 now matches 5 rows, Figure 5b)")

    # ------------------------------------------------------------------
    banner("4. Full explainability (desideratum vi)")
    print(result.explain_row(0))
    print()
    for step in result.steps:
        print("step:", step.explain())

    # ------------------------------------------------------------------
    banner("5. Share the anonymized view (identifiers dropped)")
    shared = vada.share(cities.name, measure="k-anonymity", k=2)
    print("shared attributes:", shared.schema.attributes)
    for row in shared.rows:
        print("  ", {k: str(v) for k, v in row.items()})


if __name__ == "__main__":
    main()
