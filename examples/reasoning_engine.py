"""Driving the Vadalog engine directly (Section 3).

The framework's substrate is a general Datalog± reasoner; this example
uses it standalone:

1. parse and evaluate a recursive program with existential
   quantification — labelled nulls appear, the restricted chase
   terminates;
2. check wardedness (the Warded Datalog± syntactic guarantee);
3. run the paper's attribute-categorization module (Algorithm 1) on
   the engine, including the EGD that surfaces conflicting decisions;
4. render a full derivation tree (provenance-based explainability).

Run:  python examples/reasoning_engine.py
"""

from repro.vadalog import Program
from repro.vadalog.atoms import Atom
from repro.vadalog_programs import CATEGORIZATION, cycle_registry


def banner(text):
    print(f"\n=== {text} " + "=" * max(0, 60 - len(text)))


def main():
    # ------------------------------------------------------------------
    banner("1. Recursion + existentials + aggregation")
    program = Program.parse(
        """
        % Every employee reports to some manager (existential)...
        emp(alice). emp(bob). emp(carol).
        emp(X) -> exists(M) reportsTo(X, M).

        % ... and salaries aggregate per team.
        salary(alice, 100). salary(bob, 80). salary(carol, 120).
        team(alice, dev). team(bob, dev). team(carol, risk).
        teamCost(T, S) :- team(X, T), salary(X, W), S = msum(W, <X>).
        """
    )
    result = program.run()
    print("reportsTo:", sorted(map(str, result.facts("reportsTo"))))
    print("teamCost: ", sorted(result.tuples("teamCost")))
    print("labelled nulls invented:", result.nulls_introduced)

    # ------------------------------------------------------------------
    banner("2. Wardedness analysis")
    report = program.wardedness()
    print(report)
    print("affected positions:", sorted(report.affected))

    # ------------------------------------------------------------------
    banner("3. Algorithm 1 on the engine (with EGD conflicts)")
    print(CATEGORIZATION)
    registry, _ = cycle_registry(similarity_threshold=0.7)
    facts = [
        Atom.of("att", "survey", "Area", "Geographic area"),
        Atom.of("att", "survey", "Sector", "Product sector"),
        Atom.of("att", "survey", "Mystery", "???"),
        Atom.of("expBase", "Area", "Quasi-identifier"),
        Atom.of("expBase", "sector", "Quasi-identifier"),
        # A conflicting expert opinion, to trigger the EGD:
        Atom.of("expBase", "AREA", "Identifier"),
    ]
    outcome = Program.parse(CATEGORIZATION).run(facts, externals=registry)
    print("derived categories:")
    for micro_db, attribute, category in sorted(
        outcome.tuples("cat"), key=str
    ):
        print(f"  cat({micro_db}, {attribute}) = {category}")
    print("EGD violations for manual inspection:")
    for violation in outcome.egd_violations:
        print("  ", violation)

    # ------------------------------------------------------------------
    banner("4. Provenance: why does a fact hold?")
    closure = Program.parse(
        """
        own(holdco, alpha, 0.6). own(alpha, beta, 0.7).
        own(X, Y, W) -> rel(X, X).
        @label("direct").  rel(X, Y) :- own(X, Y, W), W > 0.5.
        @label("joint").   rel(X, Y) :- rel(X, Z), own(Z, Y, W),
                                        msum(W, <Z>) > 0.5.
        """
    )
    result = closure.run()
    target = Atom.of("rel", "holdco", "beta")
    print(f"explanation of {target}:")
    print(result.explain(target).render(indent="  "))


if __name__ == "__main__":
    main()
